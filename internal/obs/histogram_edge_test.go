package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileEmpty: every quantile of an empty histogram is 0, and
// so are the extrema — no NaN or sentinel infinities may leak out.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram extrema = (%v, %v), want (0, 0)", h.Min(), h.Max())
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
	if math.IsNaN(s.Mean) || math.IsInf(s.Min, 0) || math.IsInf(s.Max, 0) {
		t.Errorf("empty snapshot leaks sentinels: %+v", s)
	}
}

// TestHistogramQuantileSingleObservation: with one observation every
// quantile must report exactly that value — the extrema clamping defeats the
// factor-of-two bucket interpolation error.
func TestHistogramQuantileSingleObservation(t *testing.T) {
	for _, v := range []float64{0, 1e-9, 0.333, 1, 1e6} {
		h := NewHistogram()
		h.Observe(v)
		for _, q := range []float64{0, 0.5, 0.95, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("single-observation(%v) Quantile(%v) = %v, want %v", v, q, got, v)
			}
		}
		if h.Min() != v || h.Max() != v {
			t.Errorf("single-observation(%v) extrema = (%v, %v)", v, h.Min(), h.Max())
		}
	}
}

// TestHistogramQuantileBoundsClamped: out-of-range q values clamp to [0, 1]
// instead of panicking or extrapolating.
func TestHistogramQuantileBoundsClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	h.Observe(2)
	if got := h.Quantile(-0.5); got != h.Quantile(0) {
		t.Errorf("Quantile(-0.5) = %v, want Quantile(0) = %v", got, h.Quantile(0))
	}
	if got := h.Quantile(1.5); got != h.Quantile(1) {
		t.Errorf("Quantile(1.5) = %v, want Quantile(1) = %v", got, h.Quantile(1))
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want the max 2", got)
	}
}

// TestHistogramNegativeAndNaNClampedToZero: invalid observations land in the
// first bucket as 0 rather than corrupting sums or extrema.
func TestHistogramNegativeAndNaNClampedToZero(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	h.Observe(math.NaN())
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("clamped stats: sum=%v min=%v max=%v, want all 0", h.Sum(), h.Min(), h.Max())
	}
	if math.IsNaN(h.Quantile(0.5)) {
		t.Error("NaN leaked into quantiles")
	}
}

// TestHistogramExemplarConcurrentReadWrite races exemplar stores against
// loads (Exemplars, Snapshot, WritePrometheus) — run under -race this is the
// pointer-race guard for the per-bucket atomic exemplar slots.
func TestHistogramExemplarConcurrentReadWrite(t *testing.T) {
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := float64(seed+1) * 1e-6
			for {
				select {
				case <-stop:
					return
				default:
					h.ObserveExemplar(v, NewTraceID())
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			for {
				select {
				case <-stop:
					return
				default:
					for _, ex := range h.Exemplars() {
						if ex.TraceID == "" || ex.Value < 0 {
							t.Errorf("torn exemplar read: %+v", ex)
							return
						}
					}
					_ = h.Snapshot()
					sb.Reset()
					_ = writePromHistogram(&sb, "x", "x", h)
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if len(h.Exemplars()) == 0 {
		t.Error("no exemplars retained after concurrent writes")
	}
}

// TestHistogramExemplarZeroTraceIDSkipped: untraced observations must not
// allocate or overwrite exemplars.
func TestHistogramExemplarZeroTraceIDSkipped(t *testing.T) {
	h := NewHistogram()
	tid := NewTraceID()
	h.ObserveExemplar(1e-6, tid)
	h.ObserveExemplar(1e-6, TraceID{}) // same bucket, zero trace: keep old
	exs := h.Exemplars()
	if len(exs) != 1 || exs[0].TraceID != tid.String() {
		t.Errorf("exemplars = %+v, want the traced observation only", exs)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.ObserveExemplar(1e-6, TraceID{})
	})
	if allocs != 0 {
		t.Errorf("untraced ObserveExemplar allocates %.1f per op, want 0", allocs)
	}
}

// TestPromNameSanitization: metric names must render as valid Prometheus
// identifiers — slashes, dots, dashes, unicode, and leading digits all
// become underscores.
func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"asqp/audit/relative_error": "asqp_audit_relative_error",
		"server/request_seconds":    "server_request_seconds",
		"a.b-c d":                   "a_b_c_d",
		"0leading":                  "_leading",
		"ok:colon_9":                "ok:colon_9",
		"héllo/wörld":               "h_llo_w_rld",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromExemplarLabelEscaping: a trace ID rendered into the OpenMetrics
// exemplar comment is quoted with %q, so the label survives even hostile
// values; the exposition around it must stay parseable line-by-line.
func TestPromExemplarLabelEscaping(t *testing.T) {
	h := NewHistogram()
	tid := NewTraceID()
	h.ObserveExemplar(2e-6, tid)
	var sb strings.Builder
	if err := writePromHistogram(&sb, "asqp_audit_relative_error", "asqp/audit/relative_error", h); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="`+tid.String()+`"}`) {
		t.Errorf("exemplar comment missing quoted trace_id:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE"), strings.HasPrefix(line, "# HELP"):
		case strings.Contains(line, "_bucket{le=\""):
			// Bucket lines: `name_bucket{le="..."} N` with an optional
			// ` # {...} v ts` exemplar suffix; the le label must be quoted.
			if strings.Count(line, `"`) < 2 {
				t.Errorf("unquoted le label: %q", line)
			}
		case strings.HasPrefix(line, "asqp_audit_relative_error_sum"),
			strings.HasPrefix(line, "asqp_audit_relative_error_count"):
		default:
			t.Errorf("unexpected exposition line: %q", line)
		}
	}
}

// TestAmendTraceAppendsAuditEvent: a late audit verdict must land on the
// kept trace's root span, newest-first lookup, and a miss must report false.
func TestAmendTraceAppendsAuditEvent(t *testing.T) {
	SetEnabled(true)
	ConfigureTracing(TracingConfig{SampleRate: 1})
	ResetTraces()
	t.Cleanup(func() {
		DisableTracing()
		ResetTraces()
	})

	_, span := StartSpan(context.Background(), "server/query")
	tid := span.TraceID().String()
	span.End()
	if _, ok := KeptTrace(tid); !ok {
		t.Fatal("trace not kept at sample rate 1")
	}

	ev := SpanEvent{Name: "audit", At: time.Now(), Attrs: map[string]any{"relative_error": 0.25}}
	if !AmendTrace(tid, ev) {
		t.Fatal("AmendTrace missed a kept trace")
	}
	rec, _ := KeptTrace(tid)
	found := false
	for _, e := range rec.Root.Events {
		if e.Name == "audit" && e.Attrs["relative_error"] == 0.25 {
			found = true
		}
	}
	if !found {
		t.Errorf("amended event not visible on the kept trace: %+v", rec.Root.Events)
	}
	if AmendTrace("00000000000000000000000000000000", ev) {
		t.Error("AmendTrace reported success for an unknown trace")
	}
	if AmendTrace("", ev) {
		t.Error("AmendTrace reported success for an empty trace ID")
	}
}
