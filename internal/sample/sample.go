// Package sample implements the subsampling primitives used by the ASQP-RL
// preprocessing pipeline and by several baselines: uniform sampling without
// replacement, reservoir sampling, stratified sampling, and a "variational"
// signature-stratified subsampler standing in for VerdictDB's variational
// subsampling (see DESIGN.md for the substitution rationale).
package sample

import (
	"math"
	"math/rand"
	"sort"
)

// Uniform returns k distinct indices drawn uniformly from [0, n). If k >= n
// it returns all indices 0..n-1. The result is sorted.
func Uniform(n, k int, rng *rand.Rand) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Partial Fisher-Yates over an index permutation.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := perm[:k:k]
	sort.Ints(out)
	return out
}

// Reservoir streams items 0..n-1 through a size-k reservoir and returns the
// selected indices, sorted. It is equivalent in distribution to Uniform but
// exercises the streaming code path used when n is not known in advance.
func Reservoir(n, k int, rng *rand.Rand) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	sort.Ints(res)
	return res
}

// Stratified samples k total indices from items grouped by strata[i],
// allocating slots proportionally to stratum size but guaranteeing at least
// one slot per non-empty stratum when k allows. The result is sorted.
func Stratified(strata []int, k int, rng *rand.Rand) []int {
	n := len(strata)
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	groups := map[int][]int{}
	var order []int
	for i, s := range strata {
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], i)
	}
	sort.Ints(order)
	return allocateAndDraw(groups, order, k, rng, func(size int) float64 {
		return float64(size)
	})
}

// Variational samples k total indices from items grouped by signature,
// weighting strata by sqrt(size). Compared to proportional allocation this
// over-represents rare strata — the behaviour ASQP-RL needs from VerdictDB's
// variational subsampling: tuples that appear in few query results (small
// strata) survive subsampling, while huge result sets are thinned
// aggressively. The result is sorted.
func Variational(signatures []string, k int, rng *rand.Rand) []int {
	n := len(signatures)
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	groups := map[int][]int{}
	sigID := map[string]int{}
	var order []int
	for i, sig := range signatures {
		id, ok := sigID[sig]
		if !ok {
			id = len(sigID)
			sigID[sig] = id
			order = append(order, id)
		}
		groups[id] = append(groups[id], i)
	}
	return allocateAndDraw(groups, order, k, rng, func(size int) float64 {
		return math.Sqrt(float64(size))
	})
}

// allocateAndDraw distributes k slots over groups according to weight(size)
// (largest-remainder method, ≥1 per group when possible) and draws uniform
// samples within each group.
func allocateAndDraw(groups map[int][]int, order []int, k int, rng *rand.Rand, weight func(int) float64) []int {
	type alloc struct {
		id    int
		want  float64
		slots int
	}
	var total float64
	allocs := make([]alloc, 0, len(order))
	for _, id := range order {
		w := weight(len(groups[id]))
		allocs = append(allocs, alloc{id: id, want: w})
		total += w
	}
	if total == 0 {
		return nil
	}
	// Integer parts.
	assigned := 0
	for i := range allocs {
		exact := allocs[i].want / total * float64(k)
		allocs[i].slots = int(exact)
		if allocs[i].slots > len(groups[allocs[i].id]) {
			allocs[i].slots = len(groups[allocs[i].id])
		}
		allocs[i].want = exact - float64(allocs[i].slots) // remainder
		assigned += allocs[i].slots
	}
	// Guarantee representation, then distribute remaining by remainder.
	for i := range allocs {
		if assigned >= k {
			break
		}
		if allocs[i].slots == 0 && len(groups[allocs[i].id]) > 0 {
			allocs[i].slots = 1
			assigned++
		}
	}
	for assigned < k {
		best, bestRem := -1, math.Inf(-1)
		for i := range allocs {
			if allocs[i].slots >= len(groups[allocs[i].id]) {
				continue
			}
			if allocs[i].want > bestRem {
				best, bestRem = i, allocs[i].want
			}
		}
		if best < 0 {
			break
		}
		allocs[best].slots++
		allocs[best].want -= 1
		assigned++
	}

	var out []int
	for _, a := range allocs {
		members := groups[a.id]
		for _, j := range Uniform(len(members), a.slots, rng) {
			out = append(out, members[j])
		}
	}
	sort.Ints(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}
