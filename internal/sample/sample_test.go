package sample

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func isSortedUnique(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

func TestUniformBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := Uniform(100, 10, rng)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	if !isSortedUnique(got) {
		t.Errorf("not sorted-unique: %v", got)
	}
	for _, i := range got {
		if i < 0 || i >= 100 {
			t.Errorf("index %d out of range", i)
		}
	}
}

func TestUniformEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if Uniform(0, 5, rng) != nil {
		t.Error("n=0 should give nil")
	}
	if Uniform(5, 0, rng) != nil {
		t.Error("k=0 should give nil")
	}
	all := Uniform(5, 10, rng)
	if len(all) != 5 || all[0] != 0 || all[4] != 4 {
		t.Errorf("k>=n should return everything: %v", all)
	}
}

func TestUniformIsUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, idx := range Uniform(10, 3, rng) {
			counts[idx]++
		}
	}
	want := float64(trials) * 3 / 10
	for i, c := range counts {
		ratio := float64(c) / want
		if ratio < 0.93 || ratio > 1.07 {
			t.Errorf("index %d picked %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestUniformProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(n, k uint8) bool {
		got := Uniform(int(n), int(k), rng)
		wantLen := int(k)
		if int(n) < wantLen {
			wantLen = int(n)
		}
		if int(n) == 0 || int(k) == 0 {
			wantLen = 0
		}
		return len(got) == wantLen && isSortedUnique(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservoirMatchesUniformContract(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	got := Reservoir(1000, 50, rng)
	if len(got) != 50 || !isSortedUnique(got) {
		t.Errorf("reservoir bad: len=%d", len(got))
	}
	if Reservoir(0, 5, rng) != nil || Reservoir(5, 0, rng) != nil {
		t.Error("degenerate reservoir should be nil")
	}
	all := Reservoir(3, 10, rng)
	if len(all) != 3 {
		t.Errorf("k>n reservoir = %v", all)
	}
}

func TestStratifiedCoversAllStrata(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// 3 strata: sizes 70, 20, 10.
	strata := make([]int, 100)
	for i := range strata {
		switch {
		case i < 70:
			strata[i] = 0
		case i < 90:
			strata[i] = 1
		default:
			strata[i] = 2
		}
	}
	got := Stratified(strata, 10, rng)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	seen := map[int]int{}
	for _, i := range got {
		seen[strata[i]]++
	}
	for s := 0; s < 3; s++ {
		if seen[s] == 0 {
			t.Errorf("stratum %d unrepresented: %v", s, seen)
		}
	}
	// Proportionality: the big stratum gets the most slots.
	if seen[0] <= seen[2] {
		t.Errorf("allocation not proportional: %v", seen)
	}
}

func TestStratifiedEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if Stratified(nil, 5, rng) != nil {
		t.Error("empty strata should be nil")
	}
	all := Stratified([]int{1, 2, 3}, 99, rng)
	if len(all) != 3 {
		t.Errorf("k>=n should return everything, got %v", all)
	}
}

func TestVariationalOverRepresentsRareStrata(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// One huge signature group (900) and ten rare ones (10 each).
	sigs := make([]string, 1000)
	for i := range sigs {
		if i < 900 {
			sigs[i] = "common"
		} else {
			sigs[i] = "rare" + string(rune('0'+(i-900)/10))
		}
	}
	got := Variational(sigs, 100, rng)
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	rare := 0
	for _, i := range got {
		if sigs[i] != "common" {
			rare++
		}
	}
	// Proportional allocation would give the rare groups ~10 slots total;
	// sqrt weighting must give them clearly more.
	if rare < 20 {
		t.Errorf("rare strata got %d slots, want over-representation (> 20)", rare)
	}
	// And every rare signature should be represented.
	seen := map[string]bool{}
	for _, i := range got {
		seen[sigs[i]] = true
	}
	if len(seen) != 11 {
		t.Errorf("saw %d of 11 signatures", len(seen))
	}
}

func TestVariationalEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if Variational(nil, 5, rng) != nil {
		t.Error("empty input should be nil")
	}
	all := Variational([]string{"a", "b"}, 10, rng)
	sort.Ints(all)
	if len(all) != 2 || all[0] != 0 || all[1] != 1 {
		t.Errorf("k>=n should return everything: %v", all)
	}
}

func TestVariationalExactK(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(groups uint8, kRaw uint8) bool {
		g := int(groups)%7 + 1
		sigs := make([]string, 0, g*13)
		for i := 0; i < g; i++ {
			for j := 0; j <= i*5; j++ {
				sigs = append(sigs, string(rune('a'+i)))
			}
		}
		k := int(kRaw) % (len(sigs) + 3)
		got := Variational(sigs, k, rng)
		want := k
		if want > len(sigs) {
			want = len(sigs)
		}
		if k <= 0 {
			want = 0
		}
		return len(got) == want && (len(got) == 0 || isSortedUnique(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
