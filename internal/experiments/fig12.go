package experiments

import (
	"fmt"
	"strings"

	"asqprl/internal/core"
	"asqprl/internal/engine"
	"asqprl/internal/generative"
	"asqprl/internal/metrics"
	"asqprl/internal/spn"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// aggCategory buckets a query as in Figure 12: G+SUM, SUM, G+AVG, AVG,
// G+CNT, CNT.
func aggCategory(stmt *sqlparse.Select) string {
	var fn string
	for _, it := range stmt.Items {
		sqlparse.Walk(it.Expr, func(e sqlparse.Expr) {
			if c, ok := e.(*sqlparse.Call); ok && fn == "" {
				fn = c.Name
			}
		})
	}
	short := map[string]string{"COUNT": "CNT", "SUM": "SUM", "AVG": "AVG"}[fn]
	if short == "" {
		short = fn
	}
	if len(stmt.GroupBy) > 0 {
		return "G+" + short
	}
	return short
}

// aggResultMap converts an executed aggregate result into group -> value.
func aggResultMap(t *table.Table, grouped bool) map[string]float64 {
	out := map[string]float64{}
	for _, r := range t.Rows {
		if grouped {
			if len(r) >= 2 {
				out[r[0].String()] = r[1].AsFloat()
			}
		} else if len(r) >= 1 {
			out[""] = r[0].AsFloat()
		}
	}
	return out
}

// scaledAggregate executes an aggregate on an approximate database and
// scales COUNT/SUM answers by the sampling ratio of the queried table — the
// standard AQP scale-up for unweighted samples. AVG needs no scaling.
func scaledAggregate(full, approx *table.Database, stmt *sqlparse.Select) (map[string]float64, error) {
	res, err := engine.ExecuteWith(approx, stmt, engine.Options{})
	if err != nil {
		return nil, err
	}
	grouped := len(stmt.GroupBy) > 0
	out := aggResultMap(res.Table, grouped)

	cat := aggCategory(stmt)
	if strings.HasSuffix(cat, "CNT") || strings.HasSuffix(cat, "SUM") {
		tableName := stmt.From[0].Table
		fullRows := 0
		approxRows := 0
		if t := full.Table(tableName); t != nil {
			fullRows = t.NumRows()
		}
		if t := approx.Table(tableName); t != nil {
			approxRows = t.NumRows()
		}
		if approxRows > 0 && fullRows > 0 {
			factor := float64(fullRows) / float64(approxRows)
			for g := range out {
				out[g] *= factor
			}
		}
	}
	return out, nil
}

// Fig12Aggregates regenerates Figure 12: relative error per aggregate
// operator category on FLIGHTS for ASQP-RL (aggregates over the
// approximation set, scaled), the VAE (gAQP: aggregates over generated
// tuples, scaled) and the SPN (DeepDB: model-based estimation). Memory is 1%
// of the data, as in Section 6.4.
func Fig12Aggregates(p Params) ([]*Table, error) {
	db := datasetFlights(p)
	flights := db.Table("flights")
	// 1% memory as in Section 6.4, floored at 400 tuples: the paper's 1%
	// of their FLIGHTS data is thousands of rows, and no sampling-based
	// method is meaningful from a few dozen tuples.
	k := flights.NumRows() / 100
	if k < 400 {
		k = 400
	}
	aggW := workload.FlightsAggregates(p.WorkloadSize*2, p.Seed+300)
	train := aggW[:len(aggW)/2]
	test := aggW[len(aggW)/2:]
	train.Normalize()
	test.Normalize()

	// ASQP-RL trained on the SPJ rewrites of the aggregate training set.
	cfg := p.asqpConfig(p.Seed)
	cfg.K = k
	sys, err := core.Train(db, train, cfg)
	if err != nil {
		return nil, err
	}

	// VAE with a 1% generation budget.
	gen, err := generative.GenerateDatabase(db, k, generative.Options{
		Epochs: 15, BatchRows: 3000, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}

	// SPN over the fact table.
	model, err := spn.Learn(flights, spn.Options{Seed: p.Seed})
	if err != nil {
		return nil, err
	}

	type agg struct {
		sum   map[string]float64
		count map[string]int
	}
	methodErr := map[string]*agg{}
	for _, m := range []string{"ASQP-RL", "VAE", "SPN"} {
		methodErr[m] = &agg{sum: map[string]float64{}, count: map[string]int{}}
	}
	record := func(method, cat string, e float64) {
		a := methodErr[method]
		a.sum[cat] += e
		a.count[cat]++
	}

	for _, q := range test {
		grouped := len(q.Stmt.GroupBy) > 0
		cat := aggCategory(q.Stmt)
		truthRes, err := engine.ExecuteWith(db, q.Stmt, engine.Options{})
		if err != nil {
			return nil, err
		}
		truth := aggResultMap(truthRes.Table, grouped)
		if len(truth) == 0 {
			continue
		}

		// ASQP-RL.
		if est, err := scaledAggregate(db, sys.SetDB(), q.Stmt); err == nil {
			record("ASQP-RL", cat, metrics.GroupRelativeError(est, truth))
		} else {
			record("ASQP-RL", cat, 1)
		}
		// VAE.
		if est, err := scaledAggregate(db, gen, q.Stmt); err == nil {
			record("VAE", cat, metrics.GroupRelativeError(est, truth))
		} else {
			record("VAE", cat, 1)
		}
		// SPN.
		if est, err := model.Estimate(q.Stmt); err == nil {
			record("SPN", cat, metrics.GroupRelativeError(map[string]float64(est), truth))
		} else {
			record("SPN", cat, 1)
		}
	}

	t := &Table{
		Title:  "Figure 12: aggregate relative error by operator (FLIGHTS, 1% memory)",
		Header: []string{"Operator", "ASQP-RL", "VAE (gAQP)", "SPN (DeepDB)"},
	}
	for _, cat := range []string{"G+SUM", "SUM", "G+AVG", "AVG", "G+CNT", "CNT"} {
		row := []string{cat}
		for _, m := range []string{"ASQP-RL", "VAE", "SPN"} {
			a := methodErr[m]
			if a.count[cat] == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.3f", a.sum[cat]/float64(a.count[cat])))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// datasetFlights builds the FLIGHTS database at the params scale.
func datasetFlights(p Params) *table.Database {
	return loadDataset("FLIGHTS", p, p.Seed).db
}
