package experiments

import (
	"time"

	"asqprl/internal/baselines"
	"asqprl/internal/core"
	"asqprl/internal/generative"
)

// Fig2Overall regenerates Figure 2: approximation quality (Equation 1 on the
// held-out test workload), setup time, and average per-query time for
// ASQP-RL, ASQP-Light, the VAE, and every subset baseline on IMDB and MAS.
func Fig2Overall(p Params) ([]*Table, error) {
	var tables []*Table
	for _, dsName := range []string{"IMDB", "MAS"} {
		t := &Table{
			Title:  "Figure 2 (" + dsName + "): quality and running time",
			Header: []string{"Baseline", "Score", "Setup", "QueryAvg"},
		}
		type rowAgg struct {
			scores []float64
			setups []time.Duration
			qavgs  []time.Duration
		}
		agg := map[string]*rowAgg{}
		order := []string{"ASQP-RL", "ASQP-Light", "VAE"}
		for _, b := range baselines.All() {
			order = append(order, b.Name())
		}
		for _, name := range order {
			agg[name] = &rowAgg{}
		}

		for s := 0; s < p.Seeds; s++ {
			seed := p.Seed + int64(s)*1000
			ds := loadDataset(dsName, p, seed)

			record := func(name string, score float64, setup time.Duration, qavg time.Duration) {
				a := agg[name]
				a.scores = append(a.scores, score)
				a.setups = append(a.setups, setup)
				a.qavgs = append(a.qavgs, qavg)
			}

			// ASQP-RL.
			start := time.Now()
			sys, err := core.Train(ds.db, ds.train, p.asqpConfig(seed))
			if err != nil {
				return nil, err
			}
			setup := time.Since(start)
			score, err := ds.score(sys.SetDB(), ds.test, p.F, p)
			if err != nil {
				return nil, err
			}
			record("ASQP-RL", score, setup, queryAvg(sys.SetDB(), ds.test, 10))

			// ASQP-Light.
			start = time.Now()
			light, err := core.Train(ds.db, ds.train, p.lightConfig(seed))
			if err != nil {
				return nil, err
			}
			lightSetup := time.Since(start)
			lightScore, err := ds.score(light.SetDB(), ds.test, p.F, p)
			if err != nil {
				return nil, err
			}
			record("ASQP-Light", lightScore, lightSetup, queryAvg(light.SetDB(), ds.test, 10))

			// VAE (gAQP): generated tuples, queried directly.
			start = time.Now()
			gen, err := generative.GenerateDatabase(ds.db, p.K, generative.Options{
				Epochs: 12, BatchRows: 2000, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			vaeSetup := time.Since(start)
			vaeScore, _ := ds.score(gen, ds.test, p.F, p)
			record("VAE", vaeScore, vaeSetup, queryAvg(gen, ds.test, 10))

			// Subset baselines.
			opts := baselines.Options{F: p.F, Seed: seed, TimeBudget: p.BaselineBudget}
			for _, b := range baselines.All() {
				start = time.Now()
				sub, err := b.Build(ds.db, ds.train, p.K, opts)
				if err != nil {
					return nil, err
				}
				bSetup := time.Since(start)
				sdb := sub.Materialize(ds.db)
				bScore, _ := ds.score(sdb, ds.test, p.F, p)
				record(b.Name(), bScore, bSetup, queryAvg(sdb, ds.test, 10))
			}
		}

		for _, name := range order {
			a := agg[name]
			t.AddRow(name, fmtScore(a.scores), fmtDurs(a.setups), fmtDurs(a.qavgs))
		}
		tables = append(tables, t)
	}
	return tables, nil
}
