package experiments

import (
	"fmt"
	"math/rand"

	"asqprl/internal/baselines"
	"asqprl/internal/cluster"
	"asqprl/internal/core"
	"asqprl/internal/embed"
	"asqprl/internal/workload"
)

// Fig6NoWorkload regenerates Figure 6: the unknown-query-workload mode on
// FLIGHTS. The system starts from a statistics-generated workload; at each
// iteration the (simulated) user contributes five queries of their hidden
// interest, the system fine-tunes, and the quality on the user's interest is
// measured. RAN and QRD — which can run without a workload — are the static
// comparison lines.
func Fig6NoWorkload(p Params) ([]*Table, error) {
	ds := loadDataset("FLIGHTS", p, p.Seed)
	// Hidden user interest: a narrow topic (heavily delayed long-haul
	// flights) the statistics-driven bootstrap cannot anticipate. The user
	// reveals interest queries five at a time; quality is measured on the
	// whole interest.
	interest := delayedFlightsInterest(p.Seed)
	userQueries := interest

	// Bootstrap from generated queries only.
	genW, err := core.GenerateWorkload(ds.db, core.GenOptions{N: p.WorkloadSize, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	cfg := p.asqpConfig(p.Seed)
	sys, err := core.Train(ds.db, genW, cfg)
	if err != nil {
		return nil, err
	}

	// Static baselines.
	opts := baselines.Options{F: p.F, Seed: p.Seed, TimeBudget: p.BaselineBudget}
	ranSub, err := (baselines.Random{}).Build(ds.db, nil, p.K, opts)
	if err != nil {
		return nil, err
	}
	ranScore, _ := ds.score(ranSub.Materialize(ds.db), interest, p.F, p)
	qrdSub, err := (baselines.QRD{}).Build(ds.db, nil, p.K, opts)
	if err != nil {
		return nil, err
	}
	qrdScore, _ := ds.score(qrdSub.Materialize(ds.db), interest, p.F, p)

	t := &Table{
		Title:  "Figure 6: unknown workload on FLIGHTS — quality per refinement iteration",
		Header: []string{"Iteration", "UserQueriesSeen", "ASQP-RL", "RAN", "QRD"},
	}
	record := func(iter, seen int) error {
		score, err := sys.ScoreOn(interest)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", iter), fmt.Sprintf("%d", seen),
			fmt.Sprintf("%.3f", score), fmt.Sprintf("%.3f", ranScore), fmt.Sprintf("%.3f", qrdScore))
		return nil
	}
	if err := record(0, 0); err != nil {
		return nil, err
	}

	perStep := 5
	iter := 0
	for start := 0; start < len(userQueries); start += perStep {
		iter++
		end := start + perStep
		if end > len(userQueries) {
			end = len(userQueries)
		}
		step := userQueries[start:end]
		// Generate additional aligned queries alongside the user's
		// (Section 4.5) and fine-tune.
		aligned, err := core.GenerateWorkload(ds.db, core.GenOptions{N: perStep, Seed: p.Seed + int64(iter)})
		if err != nil {
			return nil, err
		}
		ft := workload.Merge(workload.Workload(step), aligned)
		if err := sys.FineTune(ft, p.Episodes/3); err != nil {
			return nil, err
		}
		if err := record(iter, end); err != nil {
			return nil, err
		}
		if iter >= 4 {
			break
		}
	}
	return []*Table{t}, nil
}

// delayedFlightsInterest generates the narrow "delayed long-haul" user
// interest for the unknown-workload experiment.
func delayedFlightsInterest(seed int64) workload.Workload {
	rng := rand.New(rand.NewSource(seed + 77))
	var sqls []string
	seen := map[string]bool{}
	for len(sqls) < 20 {
		var q string
		switch rng.Intn(4) {
		case 0:
			q = fmt.Sprintf("SELECT * FROM flights WHERE dep_delay > %d AND distance > %d",
				50+rng.Intn(60), 1200+rng.Intn(1200))
		case 1:
			q = fmt.Sprintf("SELECT carrier, origin, dep_delay FROM flights WHERE dep_delay > %d",
				80+rng.Intn(80))
		case 2:
			q = fmt.Sprintf("SELECT * FROM flights WHERE arr_delay > %d AND distance > %d",
				40+rng.Intn(60), 1500+rng.Intn(1000))
		default:
			q = fmt.Sprintf("SELECT * FROM flights WHERE dep_delay BETWEEN %d AND %d AND month = %d",
				50+rng.Intn(30), 150+rng.Intn(100), 1+rng.Intn(12))
		}
		if !seen[q] {
			seen[q] = true
			sqls = append(sqls, q)
		}
	}
	return workload.MustNew(sqls...)
}

// Fig7Drift regenerates Figure 7: the workload is clustered into three
// interest clusters over query embeddings; the system trains on the first,
// then each new cluster arrives as drifted user queries and fine-tuning is
// triggered, with quality on the active cluster measured before and after.
func Fig7Drift(p Params) ([]*Table, error) {
	ds := loadDataset("IMDB", p, p.Seed)
	all := workload.Merge(ds.train, ds.test)

	// Cluster the embedded queries into three interests.
	emb := embed.Embedder{}
	vecs := make([][]float64, len(all))
	for i, q := range all {
		vecs[i] = emb.Query(q.Stmt)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	res := cluster.KMeans(vecs, 3, 30, rng)
	clusters := make([]workload.Workload, 3)
	for i, q := range all {
		c := res.Assignments[i]
		clusters[c] = append(clusters[c], q)
	}
	for i := range clusters {
		if len(clusters[i]) == 0 {
			return nil, fmt.Errorf("fig7: cluster %d empty; increase workload size", i)
		}
		clusters[i].Normalize()
	}

	// Split each cluster into train/test.
	type split struct{ train, test workload.Workload }
	splits := make([]split, 3)
	for i := range clusters {
		tr, te := clusters[i].Split(0.7, rng)
		if len(te) == 0 {
			te = tr
		}
		splits[i] = split{tr, te}
	}

	cfg := p.asqpConfig(p.Seed)
	sys, err := core.Train(ds.db, splits[0].train, cfg)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Figure 7: interest drift and fine-tuning (IMDB, 3 workload clusters)",
		Header: []string{"Phase", "ActiveCluster", "ScoreBeforeFineTune", "ScoreAfterFineTune"},
	}
	s0, _ := sys.ScoreOn(splits[0].test)
	t.AddRow("0", "1", fmt.Sprintf("%.3f", s0), "-")

	for phase := 1; phase <= 2; phase++ {
		sp := splits[phase]
		before, _ := sys.ScoreOn(sp.test)
		// Fine-tuning is "tailored to the specific characteristics" of the
		// drifted queries (Section 4.4): they receive double weight in the
		// merged workload, and a full training budget re-aligns the policy.
		boosted := workloadCopy(sp.train)
		for i := range boosted {
			boosted[i].Weight *= 2
		}
		if err := sys.FineTune(boosted, p.Episodes); err != nil {
			return nil, err
		}
		after, _ := sys.ScoreOn(sp.test)
		t.AddRow(fmt.Sprintf("%d", phase), fmt.Sprintf("%d", phase+1),
			fmt.Sprintf("%.3f", before), fmt.Sprintf("%.3f", after))
	}
	return []*Table{t}, nil
}
