package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllRunnersProduceWellFormedTables runs every experiment at Fast()
// sizing and checks structural well-formedness: at least one table, matching
// column counts, non-empty cells.
func TestAllRunnersProduceWellFormedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tables, err := r.Run(Fast())
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", r.ID)
			}
			for _, tab := range tables {
				if tab.Title == "" || len(tab.Header) == 0 {
					t.Errorf("%s: table missing title/header", r.ID)
				}
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", r.ID, tab.Title)
				}
				for ri, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Errorf("%s: table %q row %d has %d cells, want %d",
							r.ID, tab.Title, ri, len(row), len(tab.Header))
					}
					for ci, cell := range row {
						if cell == "" {
							t.Errorf("%s: table %q cell (%d,%d) empty", r.ID, tab.Title, ri, ci)
						}
					}
				}
				var buf bytes.Buffer
				tab.Render(&buf)
				if !strings.Contains(buf.String(), tab.Title) {
					t.Errorf("%s: render missing title", r.ID)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	r, err := ByID("fig2")
	if err != nil || r.ID != "fig2" {
		t.Errorf("ByID(fig2) = %v, %v", r.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestParamsConfigs(t *testing.T) {
	p := Full()
	cfg := p.asqpConfig(7)
	if cfg.K != p.K || cfg.F != p.F || cfg.Seed != 7 {
		t.Errorf("asqpConfig wrong: %+v", cfg)
	}
	light := p.lightConfig(7)
	if light.TrainFraction >= 1 || light.Episodes >= cfg.Episodes {
		t.Errorf("lightConfig should shrink work: %+v", light)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"A", "LongHeader"},
	}
	tab.AddRow("x", "1")
	tab.AddRow("longer", "2")
	var buf bytes.Buffer
	tab.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), buf.String())
	}
	// Column B should start at the same offset in each data line.
	off := strings.Index(lines[1], "LongHeader")
	if strings.Index(lines[4], "2") != off {
		t.Errorf("columns not aligned:\n%s", buf.String())
	}
}

// TestFig2ShapeHolds verifies the headline claim's shape at fast scale:
// ASQP-RL outscores the classical baselines, and the VAE is far behind.
func TestFig2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	tables, err := Fig2Overall(Fast())
	if err != nil {
		t.Fatal(err)
	}
	imdb := tables[0]
	scores := map[string]float64{}
	for _, row := range imdb.Rows {
		s := row[1]
		if i := strings.IndexByte(s, 0xC2); i > 0 { // strip ±...
			s = s[:i]
		}
		v, err := strconv.ParseFloat(strings.SplitN(s, "±", 2)[0], 64)
		if err != nil {
			t.Fatalf("bad score cell %q: %v", row[1], err)
		}
		scores[row[0]] = v
	}
	if scores["ASQP-RL"] <= scores["RAN"] {
		t.Errorf("ASQP-RL (%.3f) should beat RAN (%.3f)", scores["ASQP-RL"], scores["RAN"])
	}
	if scores["VAE"] >= scores["ASQP-RL"] {
		t.Errorf("VAE (%.3f) should be far below ASQP-RL (%.3f)", scores["VAE"], scores["ASQP-RL"])
	}
}
