package experiments

import (
	"fmt"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/engine"
	"asqprl/internal/metrics"
)

// Fig5Estimator regenerates Figure 5 and the "Answers Estimation Quality"
// discussion of Section 6.2: the answerability estimator's precision and
// recall on held-out queries as the training fraction shrinks, plus the
// full-system variants that fall back to the database below prediction
// thresholds 0.6 and 0.8, reporting the resulting score and per-query time.
func Fig5Estimator(p Params) ([]*Table, error) {
	t := &Table{
		Title:  "Figure 5: answerability estimator quality vs training fraction (IMDB)",
		Header: []string{"TrainFraction", "Precision", "Recall"},
	}
	fractions := []float64{1.0, 0.75, 0.5}
	ds := loadDataset("IMDB", p, p.Seed)
	// The estimator's job is separating answerable from unanswerable
	// queries; evaluate it over a mix that contains both populations —
	// familiar (train) and unseen (test) queries.
	evalSet := append(workloadCopy(ds.train), ds.test...)
	evalSet.Normalize()

	var fullSys *core.System
	for _, frac := range fractions {
		cfg := p.asqpConfig(p.Seed)
		cfg.TrainFraction = frac
		sys, err := core.Train(ds.db, ds.train, cfg)
		if err != nil {
			return nil, err
		}
		if frac == 1.0 {
			fullSys = sys
		}
		// Ground truth: actual per-query score on the approximation set,
		// thresholded at 0.5 as in the paper.
		actualScores, _ := metrics.PerQueryScoresWith(ds.db, sys.SetDB(), evalSet, p.F, ds.scoreOpts(p))
		actual := make([]bool, len(evalSet))
		predicted := make([]bool, len(evalSet))
		for i, q := range evalSet {
			actual[i] = actualScores[i] >= 0.5
			pred, _ := sys.Estimator().Estimate(q.Stmt)
			predicted[i] = pred >= 0.5
		}
		precision, recall := metrics.PrecisionRecall(predicted, actual)
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), fmt.Sprintf("%.2f", precision), fmt.Sprintf("%.2f", recall))
	}

	// Full-system fallback variants.
	t2 := &Table{
		Title:  "Section 6.2: full system with database fallback below prediction threshold (IMDB)",
		Header: []string{"FallbackThreshold", "Score", "QueryAvg"},
	}
	for _, thr := range []float64{0.0, 0.6, 0.8} {
		var total float64
		var elapsed time.Duration
		for i, q := range ds.test {
			pred, _ := fullSys.Estimator().Estimate(q.Stmt)
			start := time.Now()
			target := fullSys.SetDB()
			if pred < thr {
				target = ds.db
			}
			res, err := engine.ExecuteWith(target, q.Stmt, engine.Options{})
			if err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			if pred < thr {
				// Exact answer.
				total += 1
			} else {
				scores, _ := metrics.PerQueryScoresWith(ds.db, fullSys.SetDB(), ds.test.Subset([]int{i}), p.F, ds.scoreOpts(p))
				if len(scores) > 0 {
					total += scores[0]
				}
			}
			_ = res
		}
		label := "none"
		if thr > 0 {
			label = fmt.Sprintf("%.1f", thr)
		}
		t2.AddRow(label,
			fmt.Sprintf("%.3f", total/float64(len(ds.test))),
			fmtDur(elapsed/time.Duration(len(ds.test))))
	}
	return []*Table{t, t2}, nil
}
