package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFmtScore(t *testing.T) {
	if got := fmtScore([]float64{0.5}); got != "0.500" {
		t.Errorf("single score = %q", got)
	}
	got := fmtScore([]float64{0.4, 0.6})
	if !strings.HasPrefix(got, "0.500±") {
		t.Errorf("multi score = %q", got)
	}
}

func TestFmtDurations(t *testing.T) {
	if got := fmtDur(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDurs([]time.Duration{time.Millisecond}); got != "1.0ms" {
		t.Errorf("single fmtDurs = %q", got)
	}
	got := fmtDurs([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if !strings.HasPrefix(got, "2.0±") {
		t.Errorf("multi fmtDurs = %q", got)
	}
}

func TestLoadDatasetDeterministicAndSplit(t *testing.T) {
	p := Fast()
	a := loadDataset("IMDB", p, 7)
	b := loadDataset("IMDB", p, 7)
	if len(a.train) != len(b.train) || a.train[0].SQL != b.train[0].SQL {
		t.Error("dataset loading not deterministic")
	}
	if len(a.train) == 0 || len(a.test) == 0 {
		t.Error("split produced empty side")
	}
	// Train and test are disjoint.
	seen := map[string]bool{}
	for _, q := range a.train {
		seen[q.SQL] = true
	}
	for _, q := range a.test {
		if seen[q.SQL] {
			t.Errorf("query %q in both train and test", q.SQL)
		}
	}
	for _, name := range []string{"MAS", "FLIGHTS"} {
		ds := loadDataset(name, p, 7)
		if ds.db.TotalRows() == 0 {
			t.Errorf("%s dataset empty", name)
		}
	}
}

func TestQueryAvgEmptyWorkload(t *testing.T) {
	p := Fast()
	ds := loadDataset("IMDB", p, 1)
	if d := queryAvg(ds.db, nil, 5); d != 0 {
		t.Errorf("empty workload queryAvg = %v", d)
	}
	if d := queryAvg(ds.db, ds.test, 3); d <= 0 {
		t.Errorf("queryAvg = %v, want > 0", d)
	}
}

func TestDelayedFlightsInterestShape(t *testing.T) {
	w := delayedFlightsInterest(3)
	if len(w) != 20 {
		t.Fatalf("interest queries = %d, want 20", len(w))
	}
	for _, q := range w {
		if !strings.Contains(q.SQL, "delay") {
			t.Errorf("interest query off-topic: %s", q.SQL)
		}
	}
}

func TestWorkloadCopyIndependence(t *testing.T) {
	p := Fast()
	ds := loadDataset("IMDB", p, 1)
	cp := workloadCopy(ds.train)
	cp[0].Weight = 99
	if ds.train[0].Weight == 99 {
		t.Error("workloadCopy shares backing array entries")
	}
}
