package experiments

import (
	"time"

	"asqprl/internal/core"
)

// Fig3Ablation regenerates Figure 3: the RL ablation over environments
// (GSL, DRP, DRP+GSL) and agent variants (full ASQP-RL, without PPO
// clipping, and additionally without the actor-critic baseline) on IMDB and
// MAS, reporting score and total time.
func Fig3Ablation(p Params) ([]*Table, error) {
	type variant struct {
		name string
		mod  func(*core.Config)
	}
	variants := []variant{
		{"ASQP-RL", func(c *core.Config) {}},
		{"ASQP-RL - ppo", func(c *core.Config) {
			c.RL.ClipEpsilon = 0
			c.RL.KLCoef = 0
		}},
		{"ASQP-RL - ppo - ac", func(c *core.Config) {
			c.RL.ClipEpsilon = 0
			c.RL.KLCoef = 0
			c.RL.UseCritic = false
		}},
	}
	envs := []core.EnvironmentKind{core.EnvGSL, core.EnvDRP, core.EnvHybrid}

	var tables []*Table
	for _, dsName := range []string{"IMDB", "MAS"} {
		t := &Table{
			Title:  "Figure 3 (" + dsName + "): reinforcement learning ablation",
			Header: []string{"Environment", "Agent", "TrainScore", "TestScore", "TotalTime"},
		}
		for _, env := range envs {
			for _, v := range variants {
				var trainScores, scores []float64
				var times []time.Duration
				for s := 0; s < p.Seeds; s++ {
					seed := p.Seed + int64(s)*1000
					ds := loadDataset(dsName, p, seed)
					cfg := p.asqpConfig(seed)
					cfg.Environment = env
					// The ablation compares nine variants per dataset; run
					// each at half the episode budget, and keep DRP episodes
					// (horizon-long, with two phases per swap) in the same
					// wall-clock ballpark as GSL's budget-bounded episodes.
					cfg.Episodes = p.Episodes / 2
					cfg.DRPHorizon = p.K / 4
					v.mod(&cfg)
					start := time.Now()
					sys, err := core.Train(ds.db, ds.train, cfg)
					if err != nil {
						return nil, err
					}
					elapsed := time.Since(start)
					trainScore, err := ds.score(sys.SetDB(), ds.train, p.F, p)
					if err != nil {
						return nil, err
					}
					score, err := ds.score(sys.SetDB(), ds.test, p.F, p)
					if err != nil {
						return nil, err
					}
					trainScores = append(trainScores, trainScore)
					scores = append(scores, score)
					times = append(times, elapsed)
				}
				t.AddRow(env.String(), v.name, fmtScore(trainScores), fmtScore(scores), fmtDurs(times))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}
