package experiments

import (
	"fmt"
	"time"

	"asqprl/internal/baselines"
	"asqprl/internal/core"
)

// sweepBaselines are the comparison methods shown in the k and F sweeps.
var sweepBaselines = []string{"RAN", "TOP", "QRD", "SKY", "GRE+"}

// Fig8MemorySweep regenerates Figure 8: quality as the memory budget k
// grows. ASQP-RL trains once at the largest k and rebuilds the set per
// requested size (Algorithm 2's req_size); baselines rebuild per k.
func Fig8MemorySweep(p Params) ([]*Table, error) {
	ds := loadDataset("IMDB", p, p.Seed)
	ks := []int{p.K / 4, p.K / 2, p.K, p.K * 3 / 2}

	cfg := p.asqpConfig(p.Seed)
	cfg.K = ks[len(ks)-1]
	sys, err := core.Train(ds.db, ds.train, cfg)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Figure 8: score vs memory budget k (IMDB)",
		Header: append([]string{"k", "ASQP-RL"}, sweepBaselines...),
	}
	opts := baselines.Options{F: p.F, Seed: p.Seed, TimeBudget: p.BaselineBudget}
	for _, k := range ks {
		if _, err := sys.BuildSet(k); err != nil {
			return nil, err
		}
		asqp, err := ds.score(sys.SetDB(), ds.test, p.F, p)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", k), fmt.Sprintf("%.3f", asqp)}
		for _, name := range sweepBaselines {
			b, err := baselines.ByName(name)
			if err != nil {
				return nil, err
			}
			sub, err := b.Build(ds.db, ds.train, k, opts)
			if err != nil {
				return nil, err
			}
			score, _ := ds.score(sub.Materialize(ds.db), ds.test, p.F, p)
			row = append(row, fmt.Sprintf("%.3f", score))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Fig9FrameSweep regenerates Figure 9: quality as the frame size F grows
// while the memory budget stays fixed (harder problem: each query needs more
// covered tuples).
func Fig9FrameSweep(p Params) ([]*Table, error) {
	ds := loadDataset("IMDB", p, p.Seed)
	fs := []int{p.F / 2, p.F, p.F * 3 / 2, p.F * 2}

	t := &Table{
		Title:  "Figure 9: score vs frame size F (IMDB)",
		Header: append([]string{"F", "ASQP-RL"}, sweepBaselines...),
	}
	opts := baselines.Options{Seed: p.Seed, TimeBudget: p.BaselineBudget}
	for _, f := range fs {
		cfg := p.asqpConfig(p.Seed)
		cfg.F = f
		sys, err := core.Train(ds.db, ds.train, cfg)
		if err != nil {
			return nil, err
		}
		asqp, err := ds.score(sys.SetDB(), ds.test, f, p)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", f), fmt.Sprintf("%.3f", asqp)}
		opts.F = f
		for _, name := range sweepBaselines {
			b, _ := baselines.ByName(name)
			sub, err := b.Build(ds.db, ds.train, p.K, opts)
			if err != nil {
				return nil, err
			}
			score, _ := ds.score(sub.Materialize(ds.db), ds.test, f, p)
			row = append(row, fmt.Sprintf("%.3f", score))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Fig10TrainingSetSize regenerates Figure 10a/b: quality and training time
// as the fraction of executed representative queries shrinks.
func Fig10TrainingSetSize(p Params) ([]*Table, error) {
	ds := loadDataset("IMDB", p, p.Seed)
	fractions := []float64{1.0, 0.75, 0.5, 0.25}

	t := &Table{
		Title:  "Figure 10: score and setup time vs executed training fraction (IMDB)",
		Header: []string{"Fraction", "TrainScore", "TestScore", "QueryExecTime", "TotalSetup"},
	}
	// At the paper's scale, executing the training queries dominates setup,
	// so the fraction knob cuts total time; at this reproduction's scale RL
	// training dominates, so the query-execution (preprocessing) share is
	// reported separately to expose the same effect.
	for _, frac := range fractions {
		cfg := p.asqpConfig(p.Seed)
		cfg.TrainFraction = frac
		start := time.Now()
		sys, err := core.Train(ds.db, ds.train, cfg)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		trainScore, err := ds.score(sys.SetDB(), ds.train, p.F, p)
		if err != nil {
			return nil, err
		}
		score, err := ds.score(sys.SetDB(), ds.test, p.F, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%.3f", trainScore), fmt.Sprintf("%.3f", score),
			fmtDur(sys.Stats().PreprocessTime), fmtDur(elapsed))
	}
	return []*Table{t}, nil
}

// Fig11Hyperparams regenerates Figure 11: sweeps of the entropy coefficient,
// the learning rate, and the KL coefficient, reporting the test score per
// setting.
func Fig11Hyperparams(p Params) ([]*Table, error) {
	ds := loadDataset("IMDB", p, p.Seed)
	// Hyper-parameter effects act on the optimization itself, so the sweeps
	// report the training-objective score alongside the (noisier) test
	// score.
	run := func(mod func(*core.Config)) (float64, float64, error) {
		cfg := p.asqpConfig(p.Seed)
		mod(&cfg)
		sys, err := core.Train(ds.db, ds.train, cfg)
		if err != nil {
			return 0, 0, err
		}
		trainScore, err := ds.score(sys.SetDB(), ds.train, p.F, p)
		if err != nil {
			return 0, 0, err
		}
		testScore, err := ds.score(sys.SetDB(), ds.test, p.F, p)
		return trainScore, testScore, err
	}

	entropy := &Table{
		Title:  "Figure 11a: entropy coefficient sweep (IMDB)",
		Header: []string{"EntropyCoef", "TrainScore", "TestScore"},
	}
	for _, c := range []float64{0, 0.001, 0.01, 0.02} {
		c := c
		trainScore, testScore, err := run(func(cfg *core.Config) { cfg.RL.EntropyCoef = c })
		if err != nil {
			return nil, err
		}
		entropy.AddRow(fmt.Sprintf("%g", c), fmt.Sprintf("%.3f", trainScore), fmt.Sprintf("%.3f", testScore))
	}

	lr := &Table{
		Title:  "Figure 11b: learning rate sweep (IMDB)",
		Header: []string{"LearningRate", "TrainScore", "TestScore"},
	}
	for _, c := range []float64{5e-4, 3e-3, 1e-2, 5e-2} {
		c := c
		trainScore, testScore, err := run(func(cfg *core.Config) { cfg.RL.LR = c })
		if err != nil {
			return nil, err
		}
		lr.AddRow(fmt.Sprintf("%g", c), fmt.Sprintf("%.3f", trainScore), fmt.Sprintf("%.3f", testScore))
	}

	kl := &Table{
		Title:  "Figure 11c: KL coefficient sweep (IMDB)",
		Header: []string{"KLCoef", "TrainScore", "TestScore"},
	}
	for _, c := range []float64{0.2, 0.5, 0.9} {
		c := c
		trainScore, testScore, err := run(func(cfg *core.Config) { cfg.RL.KLCoef = c })
		if err != nil {
			return nil, err
		}
		kl.AddRow(fmt.Sprintf("%g", c), fmt.Sprintf("%.3f", trainScore), fmt.Sprintf("%.3f", testScore))
	}
	return []*Table{entropy, lr, kl}, nil
}
