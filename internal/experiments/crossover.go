package experiments

import (
	"fmt"
	"time"

	"asqprl/internal/baselines"
	"asqprl/internal/core"
)

// ScaleCrossover is this reproduction's addition to the paper's evaluation:
// it grows the IMDB dataset while holding every method's time budget fixed,
// exposing where the classical competitors' costs cross ASQP-RL's. The
// paper's GRE ran out of a 48-hour budget at 34M tuples; this experiment
// shows the same mechanism in miniature — GRE's per-candidate metric
// re-execution is priced out almost immediately, and GRE+'s full-workload
// lineage pass grows with the data while ASQP-RL's preprocessing executes
// only the query representatives.
func ScaleCrossover(p Params) ([]*Table, error) {
	scales := []float64{p.Scale, p.Scale * 2, p.Scale * 4}
	t := &Table{
		Title:  "Scale crossover: test score (and setup) vs dataset scale, fixed budgets",
		Header: []string{"Rows", "ASQP-RL", "ASQP-setup", "GRE+", "GRE+-setup", "GRE", "VERD"},
	}
	for _, scale := range scales {
		ps := p
		ps.Scale = scale
		ds := loadDataset("IMDB", ps, p.Seed)
		opts := baselines.Options{F: p.F, Seed: p.Seed, TimeBudget: p.BaselineBudget}

		start := time.Now()
		sys, err := core.Train(ds.db, ds.train, ps.asqpConfig(p.Seed))
		if err != nil {
			return nil, err
		}
		asqpSetup := time.Since(start)
		asqp, err := ds.score(sys.SetDB(), ds.test, p.F, p)
		if err != nil {
			return nil, err
		}

		scoreOf := func(name string) (float64, time.Duration, error) {
			b, err := baselines.ByName(name)
			if err != nil {
				return 0, 0, err
			}
			start := time.Now()
			sub, err := b.Build(ds.db, ds.train, p.K, opts)
			if err != nil {
				return 0, 0, err
			}
			setup := time.Since(start)
			score, _ := ds.score(sub.Materialize(ds.db), ds.test, p.F, p)
			return score, setup, nil
		}
		grePlus, grePlusSetup, err := scoreOf("GRE+")
		if err != nil {
			return nil, err
		}
		gre, _, err := scoreOf("GRE")
		if err != nil {
			return nil, err
		}
		verd, _, err := scoreOf("VERD")
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", ds.db.TotalRows()),
			fmt.Sprintf("%.3f", asqp), fmtDur(asqpSetup),
			fmt.Sprintf("%.3f", grePlus), fmtDur(grePlusSetup),
			fmt.Sprintf("%.3f", gre),
			fmt.Sprintf("%.3f", verd),
		)
	}
	return []*Table{t}, nil
}
