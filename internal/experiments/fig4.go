package experiments

import (
	"fmt"
	"time"

	"asqprl/internal/datagen"
	"asqprl/internal/engine"
	"asqprl/internal/workload"
)

// Fig4ProblemJustification regenerates Figure 4: the motivation experiment
// showing how the cumulative average time of answering exploratory queries
// directly on the database grows with database size. The IMDB database is
// blown up by increasing factors and the workload replayed against each.
func Fig4ProblemJustification(p Params) ([]*Table, error) {
	base := datagen.IMDB(p.Scale, p.Seed)
	w := workload.IMDB(p.WorkloadSize, p.Seed+100)
	if len(w) > 10 {
		w = w[:10]
		w.Normalize()
	}
	factors := []int{1, 2, 4, 8}

	t := &Table{
		Title:  "Figure 4: cumulative average direct-query time vs database size",
		Header: []string{"BlowupFactor", "Rows", "Queries", "CumAvgPerQuery"},
	}
	for _, f := range factors {
		db := datagen.Blowup(base, f)
		var cum time.Duration
		for qi, q := range w {
			start := time.Now()
			if _, err := engine.ExecuteWith(db, q.Stmt, engine.Options{MaxIntermediateRows: 20_000_000}); err != nil {
				return nil, fmt.Errorf("fig4: query %q at factor %d: %w", q.SQL, f, err)
			}
			cum += time.Since(start)
			// Emit the running average at a few checkpoints to trace the
			// figure's accumulation curve.
			if qi == len(w)-1 {
				t.AddRow(
					fmt.Sprintf("x%d", f),
					fmt.Sprintf("%d", db.TotalRows()),
					fmt.Sprintf("%d", qi+1),
					fmtDur(cum/time.Duration(qi+1)),
				)
			}
		}
	}
	return []*Table{t}, nil
}
