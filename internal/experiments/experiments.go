// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each runner produces the same rows/series the
// paper reports, over the synthetic datasets of internal/datagen (see
// DESIGN.md for the paper-vs-built substitutions and the per-experiment
// index). cmd/asqp-bench exposes the runners on the command line and
// bench_test.go wraps each one in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/engine"
	"asqprl/internal/metrics"
	"asqprl/internal/obs"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// Params sizes an experiment run. Full() matches the shapes of the paper's
// figures at laptop scale; Fast() shrinks everything for tests and smoke
// benches.
type Params struct {
	// Scale is the dataset scale factor passed to internal/datagen.
	Scale float64
	// WorkloadSize is the number of workload queries per dataset.
	WorkloadSize int
	// K is the memory budget (tuples in the approximation set).
	K int
	// F is the frame size.
	F int
	// Episodes is the RL training budget.
	Episodes int
	// Reps is the number of query representatives.
	Reps int
	// Actions is the RL action-space size.
	Actions int
	// Seeds is how many independent repetitions feed the ± columns.
	Seeds int
	// BaselineBudget caps BRT/GRE search time.
	BaselineBudget time.Duration
	// Parallelism is the worker count for scoring and query execution
	// (0 = one worker per CPU, <0 = serial). Results are identical for
	// every setting; only wall-clock changes.
	Parallelism int
	// Seed is the base random seed.
	Seed int64
}

// Full returns the default experiment sizing.
func Full() Params {
	return Params{
		Scale:          0.15,
		WorkloadSize:   36,
		K:              400,
		F:              50,
		Episodes:       320,
		Reps:           24,
		Actions:        512,
		Seeds:          2,
		BaselineBudget: 2 * time.Second,
		Seed:           1,
	}
}

// Fast returns a miniature sizing for tests and smoke benchmarks.
func Fast() Params {
	return Params{
		Scale:          0.02,
		WorkloadSize:   14,
		K:              120,
		F:              25,
		Episodes:       12,
		Reps:           8,
		Actions:        64,
		Seeds:          1,
		BaselineBudget: 150 * time.Millisecond,
		Seed:           1,
	}
}

// asqpConfig derives the ASQP-RL configuration from the params.
func (p Params) asqpConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.K = p.K
	cfg.F = p.F
	cfg.Episodes = p.Episodes
	cfg.NumRepresentatives = p.Reps
	cfg.ActionSpaceSize = p.Actions
	cfg.Seed = seed
	cfg.RL.Seed = seed
	cfg.Parallelism = p.Parallelism
	return cfg
}

// lightConfig derives the ASQP-Light configuration.
func (p Params) lightConfig(seed int64) core.Config {
	cfg := p.asqpConfig(seed)
	light := core.LightConfig()
	cfg.TrainFraction = light.TrainFraction
	cfg.Episodes = p.Episodes / 2
	cfg.EarlyStopPatience = light.EarlyStopPatience
	cfg.RL.LR = light.RL.LR
	return cfg
}

// Table is a rendered experiment artifact: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render pretty-prints the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Runner is one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Params) ([]*Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{"fig2", "Overall evaluation: score, setup and per-query time for ASQP-RL, ASQP-Light and all baselines on IMDB and MAS", Fig2Overall},
		{"fig3", "RL ablation: environments (GSL/DRP/hybrid) x agents (full/-ppo/-ppo-ac)", Fig3Ablation},
		{"fig4", "Problem justification: cumulative average direct-query latency vs database blow-up", Fig4ProblemJustification},
		{"fig5", "Answerability estimator: precision/recall vs training fraction; full-system fallback variants", Fig5Estimator},
		{"fig6", "Unknown workload on FLIGHTS: quality per refinement iteration vs RAN and QRD", Fig6NoWorkload},
		{"fig7", "Interest drift: quality per phase with fine-tuning", Fig7Drift},
		{"fig8", "Memory budget sweep: score vs k", Fig8MemorySweep},
		{"fig9", "Frame size sweep: score vs F", Fig9FrameSweep},
		{"fig10", "Training-set size: score and training time vs executed fraction", Fig10TrainingSetSize},
		{"fig11", "RL hyper-parameter sweeps: entropy, learning rate, KL coefficient", Fig11Hyperparams},
		{"fig12", "Aggregate queries: relative error by operator vs VAE (gAQP) and SPN (DeepDB)", Fig12Aggregates},
		{"div", "Diversity of approximate answers vs baselines (pairwise Jaccard)", DiversityComparison},
		{"abl-reps", "Ablation: medoid representative selection vs uniform query sampling", AblationRepSelection},
		{"abl-relax", "Ablation: query relaxation on/off for generalization", AblationRelaxation},
		{"crossover", "Scale crossover: score and setup vs dataset scale under fixed budgets (reproduction extension)", ScaleCrossover},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(ids(), ", "))
}

func ids() []string {
	var out []string
	for _, r := range Registry() {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}

// --- shared helpers ---

// dataset bundles a database with its workload and a reference-count cache
// bound to the full database: every baseline scored on this dataset reuses
// the same |q(𝒯)| counts instead of re-executing each reference query.
type dataset struct {
	name  string
	db    *table.Database
	train workload.Workload
	test  workload.Workload
	ref   *metrics.ReferenceCache
}

// scoreOpts returns scoring options carrying the dataset's reference cache
// and the run's parallelism.
func (ds dataset) scoreOpts(p Params) metrics.ScoreOptions {
	return metrics.ScoreOptions{Parallelism: p.Parallelism, Cache: ds.ref}
}

// score evaluates Equation 1 for approx against the dataset's full database,
// sharing cached reference counts across baselines.
func (ds dataset) score(approx *table.Database, w workload.Workload, frameSize int, p Params) (float64, error) {
	return metrics.ScoreWith(ds.db, approx, w, frameSize, ds.scoreOpts(p))
}

// loadDataset builds one of the named datasets with a train/test split.
func loadDataset(name string, p Params, seed int64) dataset {
	var db *table.Database
	var w workload.Workload
	switch name {
	case "MAS":
		db = datagen.MAS(p.Scale, seed)
		w = workload.MAS(p.WorkloadSize, seed+100)
	case "FLIGHTS":
		db = datagen.Flights(p.Scale, seed)
		w = workload.Flights(p.WorkloadSize, seed+100)
	default:
		db = datagen.IMDB(p.Scale, seed)
		w = workload.IMDB(p.WorkloadSize, seed+100)
	}
	rng := rand.New(rand.NewSource(seed + 200))
	train, test := w.Split(0.7, rng)
	obs.Logger().Info("dataset loaded",
		"dataset", name,
		"tables", len(db.TableNames()),
		"rows", db.TotalRows(),
		"train_queries", len(train),
		"test_queries", len(test),
		"k", p.K,
		"frame", p.F,
		"seed", seed)
	return dataset{name: name, db: db, train: train, test: test, ref: metrics.NewReferenceCache(db)}
}

// queryAvg measures the mean execution time of up to n test queries on db.
func queryAvg(db *table.Database, w workload.Workload, n int) time.Duration {
	if n > len(w) {
		n = len(w)
	}
	if n == 0 {
		return 0
	}
	start := time.Now()
	for _, q := range w[:n] {
		res, err := engine.ExecuteWith(db, q.Stmt, engine.Options{})
		_ = res
		_ = err
	}
	return time.Since(start) / time.Duration(n)
}

// fmtScore renders mean±std of a score sample.
func fmtScore(vals []float64) string {
	if len(vals) == 1 {
		return fmt.Sprintf("%.3f", vals[0])
	}
	return fmt.Sprintf("%.3f±%.3f", metrics.Mean(vals), metrics.StdDev(vals))
}

// fmtDur renders a duration in milliseconds.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// fmtDurs renders mean±std of duration samples in milliseconds.
func fmtDurs(ds []time.Duration) string {
	vals := make([]float64, len(ds))
	for i, d := range ds {
		vals[i] = float64(d.Microseconds()) / 1000
	}
	if len(vals) == 1 {
		return fmt.Sprintf("%.1fms", vals[0])
	}
	return fmt.Sprintf("%.1f±%.1fms", metrics.Mean(vals), metrics.StdDev(vals))
}

// workloadCopy clones a workload slice (weights included).
func workloadCopy(w workload.Workload) workload.Workload {
	return append(workload.Workload(nil), w...)
}
