package experiments

import (
	"fmt"
	"math/rand"

	"asqprl/internal/baselines"
	"asqprl/internal/core"
	"asqprl/internal/engine"
	"asqprl/internal/metrics"
	"asqprl/internal/table"
)

// DiversityComparison regenerates the Section 6.2 diversity study: pairwise
// Jaccard diversity of approximate answers (queries run with LIMIT 100)
// for the full database, ASQP-RL, and the subset baselines.
func DiversityComparison(p Params) ([]*Table, error) {
	ds := loadDataset("IMDB", p, p.Seed)

	// Queries with LIMIT 100 as in the paper.
	limited := ds.test
	for i := range limited {
		s := limited[i].Stmt.Clone()
		s.Limit = 100
		limited[i].Stmt = s
	}

	// Diversity as in Section 6.2: the mean pairwise Jaccard distance among
	// the rows of each (LIMIT 100) answer, averaged over queries with at
	// least two result rows.
	diversityOf := func(db *table.Database) (float64, error) {
		var per []float64
		for _, q := range limited {
			res, err := engine.ExecuteWith(db, q.Stmt, engine.Options{})
			if err != nil {
				return 0, err
			}
			if res.Table.NumRows() >= 2 {
				per = append(per, metrics.IntraResultDiversity(res.Table, 100))
			}
		}
		return metrics.Mean(per), nil
	}

	t := &Table{
		Title:  "Section 6.2: diversity of approximate answers (IMDB, LIMIT 100)",
		Header: []string{"Method", "PairwiseJaccardDiversity", "TestScore"},
	}

	full, err := diversityOf(ds.db)
	if err != nil {
		return nil, err
	}
	t.AddRow("FullDB", fmt.Sprintf("%.3f", full), "1.000")

	sys, err := core.Train(ds.db, ds.train, p.asqpConfig(p.Seed))
	if err != nil {
		return nil, err
	}
	asqpDiv, err := diversityOf(sys.SetDB())
	if err != nil {
		return nil, err
	}
	asqpScore, _ := ds.score(sys.SetDB(), ds.test, p.F, p)
	t.AddRow("ASQP-RL", fmt.Sprintf("%.3f", asqpDiv), fmt.Sprintf("%.3f", asqpScore))

	opts := baselines.Options{F: p.F, Seed: p.Seed, TimeBudget: p.BaselineBudget}
	for _, name := range []string{"RAN", "TOP", "QRD", "SKY", "VERD"} {
		b, err := baselines.ByName(name)
		if err != nil {
			return nil, err
		}
		sub, err := b.Build(ds.db, ds.train, p.K, opts)
		if err != nil {
			return nil, err
		}
		sdb := sub.Materialize(ds.db)
		div, err := diversityOf(sdb)
		if err != nil {
			return nil, err
		}
		score, _ := ds.score(sdb, ds.test, p.F, p)
		t.AddRow(name, fmt.Sprintf("%.3f", div), fmt.Sprintf("%.3f", score))
	}
	return []*Table{t}, nil
}

// AblationRepSelection compares medoid-based representative selection
// (the pipeline default) against uniformly sampling the same number of
// training queries — the DESIGN.md ablation on representative selection.
func AblationRepSelection(p Params) ([]*Table, error) {
	ds := loadDataset("IMDB", p, p.Seed)

	// Default: clustering + medoids over the full training workload.
	sysMedoid, err := core.Train(ds.db, ds.train, p.asqpConfig(p.Seed))
	if err != nil {
		return nil, err
	}
	medoidScore, err := ds.score(sysMedoid.SetDB(), ds.test, p.F, p)
	if err != nil {
		return nil, err
	}

	// Uniform: train on a random subset of queries of the same size as the
	// representative set, bypassing the clustering's coverage.
	rng := rand.New(rand.NewSource(p.Seed + 5))
	idx := rng.Perm(len(ds.train))
	n := p.Reps
	if n > len(idx) {
		n = len(idx)
	}
	uniform := ds.train.Subset(idx[:n])
	cfgU := p.asqpConfig(p.Seed)
	sysUniform, err := core.Train(ds.db, uniform, cfgU)
	if err != nil {
		return nil, err
	}
	uniformScore, err := ds.score(sysUniform.SetDB(), ds.test, p.F, p)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Ablation: representative selection (IMDB)",
		Header: []string{"Selection", "TestScore"},
	}
	t.AddRow("medoid clustering (default)", fmt.Sprintf("%.3f", medoidScore))
	t.AddRow("uniform query sample", fmt.Sprintf("%.3f", uniformScore))
	return []*Table{t}, nil
}

// AblationRelaxation compares relaxation settings: effectively off, the
// default factor, and aggressive relaxation with conjunct dropping — showing
// relaxation's contribution to generalization on unseen queries.
func AblationRelaxation(p Params) ([]*Table, error) {
	ds := loadDataset("IMDB", p, p.Seed)
	t := &Table{
		Title:  "Ablation: query relaxation (IMDB)",
		Header: []string{"Relaxation", "TrainScore", "TestScore"},
	}
	variants := []struct {
		name   string
		factor float64
		drop   bool
	}{
		{"off (factor 1e-6)", 1e-6, false},
		{"default (factor 0.25)", 0.25, false},
		{"aggressive (0.5 + drop)", 0.5, true},
	}
	for _, v := range variants {
		cfg := p.asqpConfig(p.Seed)
		cfg.RelaxFactor = v.factor
		cfg.RelaxDrop = v.drop
		sys, err := core.Train(ds.db, ds.train, cfg)
		if err != nil {
			return nil, err
		}
		trainScore, _ := ds.score(sys.SetDB(), ds.train, p.F, p)
		testScore, _ := ds.score(sys.SetDB(), ds.test, p.F, p)
		t.AddRow(v.name, fmt.Sprintf("%.3f", trainScore), fmt.Sprintf("%.3f", testScore))
	}
	return []*Table{t}, nil
}
