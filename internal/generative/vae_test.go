package generative

import (
	"math"
	"testing"

	"asqprl/internal/datagen"
	"asqprl/internal/engine"
	"asqprl/internal/table"
)

func flightsTable() *table.Table {
	return datagen.Flights(0.01, 3).Table("flights")
}

func fastOpts() Options {
	return Options{Epochs: 10, BatchRows: 500, Seed: 1}
}

func TestTrainVAEAndGenerate(t *testing.T) {
	tab := flightsTable()
	v, err := TrainVAE(tab, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	gen := v.Generate(100)
	if gen.NumRows() != 100 {
		t.Fatalf("generated %d rows", gen.NumRows())
	}
	if gen.Schema.String() != tab.Schema.String() {
		t.Errorf("schema mismatch: %s vs %s", gen.Schema, tab.Schema)
	}
	// Generated categorical values come from the real domain.
	ci := gen.ColumnIndex("carrier")
	valid := map[string]bool{}
	ti := tab.ColumnIndex("carrier")
	for _, r := range tab.Rows {
		valid[r[ti].Str] = true
	}
	for _, r := range gen.Rows {
		if !valid[r[ci].Str] {
			t.Fatalf("generated unseen carrier %q", r[ci].Str)
		}
	}
	// Generated numerics stay in a plausible range (within 5 sigma-ish).
	di := gen.ColumnIndex("distance")
	for _, r := range gen.Rows {
		d := r[di].AsFloat()
		if d < -5000 || d > 50000 {
			t.Fatalf("generated wild distance %v", d)
		}
	}
}

func TestVAETrainingReducesReconstructionError(t *testing.T) {
	tab := flightsTable()
	short, err := TrainVAE(tab, Options{Epochs: 1, BatchRows: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	long, err := TrainVAE(tab, Options{Epochs: 25, BatchRows: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eShort := short.ReconstructionError(tab, 200)
	eLong := long.ReconstructionError(tab, 200)
	t.Logf("reconstruction error: 1 epoch %.4f, 25 epochs %.4f", eShort, eLong)
	if eLong >= eShort {
		t.Errorf("training should reduce reconstruction error: %.4f -> %.4f", eShort, eLong)
	}
}

func TestVAEEmptyTableErrors(t *testing.T) {
	empty := table.New("e", table.Schema{{Name: "a", Kind: table.KindInt}})
	if _, err := TrainVAE(empty, fastOpts()); err == nil {
		t.Error("empty table should error")
	}
}

func TestGenerateDatabaseProportions(t *testing.T) {
	db := datagen.IMDB(0.01, 3)
	gen, err := GenerateDatabase(db, 300, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	total := gen.TotalRows()
	if total == 0 || total > 330 {
		t.Fatalf("generated %d rows, want <= ~300", total)
	}
	// Proportionality: the biggest table stays the biggest.
	if gen.Table("cast_info").NumRows() < gen.Table("name").NumRows() {
		t.Error("proportions not preserved")
	}
	// All tables exist (even if empty) so queries still parse/execute.
	for _, n := range db.TableNames() {
		if gen.Table(n) == nil {
			t.Errorf("missing table %s", n)
		}
	}
}

// TestGeneratedTuplesFailSelectiveJoins reproduces the paper's core
// observation about generative AQP for non-aggregate queries: synthetic
// tuples rarely satisfy selective filters and joins, so SPJ results over
// generated data are poor (near-zero Figure 2 scores for VAE).
func TestGeneratedTuplesFailSelectiveJoins(t *testing.T) {
	db := datagen.IMDB(0.02, 3)
	gen, err := GenerateDatabase(db, 500, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// A join query: generated ids almost never match across tables.
	q := "SELECT t.title FROM title t JOIN cast_info c ON t.id = c.title_id WHERE t.genre = 'drama'"
	full, err := engine.ExecuteSQL(db, q)
	if err != nil {
		t.Fatal(err)
	}
	genRes, err := engine.ExecuteSQL(gen, q)
	if err != nil {
		t.Fatal(err)
	}
	if full.Table.NumRows() == 0 {
		t.Skip("degenerate dataset")
	}
	ratio := float64(genRes.Table.NumRows()) / float64(full.Table.NumRows())
	t.Logf("join rows: generated %d vs real %d", genRes.Table.NumRows(), full.Table.NumRows())
	if ratio > 0.5 {
		t.Errorf("generated data satisfies joins suspiciously well (ratio %.2f)", ratio)
	}
}

func TestVAEDeterministicGivenSeed(t *testing.T) {
	tab := flightsTable()
	g1, err := TrainVAE(tab, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := TrainVAE(tab, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.Generate(10), g2.Generate(10)
	for i := range a.Rows {
		if a.Rows[i].Key() != b.Rows[i].Key() {
			t.Fatal("same seed should generate identical tuples")
		}
	}
}

func TestReconstructionErrorFinite(t *testing.T) {
	tab := flightsTable()
	v, err := TrainVAE(tab, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if e := v.ReconstructionError(tab, 100); math.IsNaN(e) || math.IsInf(e, 0) {
		t.Errorf("reconstruction error not finite: %v", e)
	}
	if v.TableName() != "flights" {
		t.Errorf("table name %q", v.TableName())
	}
}
