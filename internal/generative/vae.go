// Package generative implements the VAE baseline (gAQP, Thirumuruganathan et
// al.): a variational autoencoder trained on tuple encodings that generates
// synthetic tuples, over which queries are then executed. The paper uses it
// both as a Figure 2 baseline (where its inability to produce tuples matching
// selective SPJ filters yields near-zero scores) and as the state-of-the-art
// AQP comparator in the Section 6.4 aggregate study.
//
// The VAE here is real — encoder/decoder MLPs trained by backpropagation with
// the reparameterization trick and a KL(q(z|x) || N(0,I)) regularizer — just
// small: tuples are encoded as standardized numerics plus one-hot categories
// (top values + "other"), and generation decodes z ~ N(0, I) samples.
package generative

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"asqprl/internal/nn"
	"asqprl/internal/table"
)

// Options configures VAE training.
type Options struct {
	// Latent is the latent dimension (default 8).
	Latent int
	// Hidden is the encoder/decoder hidden width (default 48).
	Hidden int
	// Epochs over the training sample (default 30).
	Epochs int
	// BatchRows caps how many rows are used for training (default 4000).
	BatchRows int
	// LR is the Adam learning rate (default 2e-3).
	LR float64
	// TopValues is how many categorical values get their own one-hot slot
	// (default 12).
	TopValues int
	// Seed drives initialization, sampling and generation.
	Seed int64
}

func (o Options) normalize() Options {
	if o.Latent <= 0 {
		o.Latent = 8
	}
	if o.Hidden <= 0 {
		o.Hidden = 48
	}
	if o.Epochs <= 0 {
		o.Epochs = 30
	}
	if o.BatchRows <= 0 {
		o.BatchRows = 4000
	}
	if o.LR <= 0 {
		o.LR = 2e-3
	}
	if o.TopValues <= 0 {
		o.TopValues = 12
	}
	return o
}

// fieldCodec encodes one column into the feature vector and decodes it back.
type fieldCodec struct {
	col    table.Column
	start  int // offset in the feature vector
	width  int
	mean   float64 // numeric standardization
	std    float64
	values []string // categorical slots (last is "other")
}

// VAE is a trained tuple generator for one table.
type VAE struct {
	tableName string
	schema    table.Schema
	codecs    []fieldCodec
	featDim   int
	latent    int
	encoder   *nn.MLP // feat -> [mu, logvar]
	decoder   *nn.MLP // z -> feat
	rng       *rand.Rand
}

// TrainVAE fits a VAE to the rows of t.
func TrainVAE(t *table.Table, opts Options) (*VAE, error) {
	opts = opts.normalize()
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("generative: cannot train on empty table %s", t.Name)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	v := &VAE{tableName: t.Name, schema: t.Schema.Clone(), latent: opts.Latent, rng: rng}
	v.buildCodecs(t, opts)

	v.encoder = nn.NewMLP(rng, nn.ActTanh, v.featDim, opts.Hidden, 2*opts.Latent)
	v.decoder = nn.NewMLP(rng, nn.ActTanh, opts.Latent, opts.Hidden, v.featDim)
	encOpt := nn.NewAdam(v.encoder, opts.LR)
	decOpt := nn.NewAdam(v.decoder, opts.LR)
	encGrads := v.encoder.NewGrads()
	decGrads := v.decoder.NewGrads()

	// Training sample.
	n := t.NumRows()
	rowsUsed := n
	if rowsUsed > opts.BatchRows {
		rowsUsed = opts.BatchRows
	}
	perm := rng.Perm(n)[:rowsUsed]
	feats := make([][]float64, rowsUsed)
	for i, ri := range perm {
		feats[i] = v.encodeRow(t.Rows[ri])
	}

	const miniBatch = 32
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		order := rng.Perm(len(feats))
		for start := 0; start < len(order); start += miniBatch {
			end := start + miniBatch
			if end > len(order) {
				end = len(order)
			}
			encGrads.Zero()
			decGrads.Zero()
			inv := 1.0 / float64(end-start)
			for _, oi := range order[start:end] {
				v.step(feats[oi], encGrads, decGrads, inv)
			}
			encOpt.Step(v.encoder, encGrads)
			decOpt.Step(v.decoder, decGrads)
		}
	}
	return v, nil
}

// step accumulates the VAE loss gradient for one example.
func (v *VAE) step(x []float64, encGrads, decGrads *nn.Grads, scale float64) {
	encCache := v.encoder.ForwardCache(x)
	encOut := encCache.Output()
	mu := encOut[:v.latent]
	logvar := encOut[v.latent:]

	// Reparameterize.
	eps := make([]float64, v.latent)
	z := make([]float64, v.latent)
	for i := range z {
		eps[i] = v.rng.NormFloat64()
		z[i] = mu[i] + eps[i]*math.Exp(0.5*logvar[i])
	}

	decCache := v.decoder.ForwardCache(z)
	xhat := decCache.Output()

	// Reconstruction loss: MSE. dL/dxhat = 2(xhat - x).
	dXhat := make([]float64, len(xhat))
	for i := range xhat {
		dXhat[i] = 2 * (xhat[i] - x[i]) * scale
	}
	dZ := v.decoder.Backward(decCache, dXhat, decGrads)

	// Gradient through the encoder: reconstruction via reparameterization
	// plus the KL term KL(N(mu, sigma) || N(0, I)).
	dEnc := make([]float64, 2*v.latent)
	const klWeight = 0.05
	for i := 0; i < v.latent; i++ {
		sigma := math.Exp(0.5 * logvar[i])
		// Reconstruction path.
		dEnc[i] = dZ[i]                                 // d z/d mu = 1
		dEnc[v.latent+i] = dZ[i] * 0.5 * eps[i] * sigma // d z/d logvar
		// KL path: dKL/dmu = mu; dKL/dlogvar = 0.5 (e^logvar − 1).
		dEnc[i] += klWeight * mu[i] * scale
		dEnc[v.latent+i] += klWeight * 0.5 * (math.Exp(logvar[i]) - 1) * scale
	}
	v.encoder.Backward(encCache, dEnc, encGrads)
}

// buildCodecs derives the feature encoding from the table contents.
func (v *VAE) buildCodecs(t *table.Table, opts Options) {
	offset := 0
	for ci, col := range t.Schema {
		c := fieldCodec{col: col, start: offset}
		switch col.Kind {
		case table.KindInt, table.KindFloat:
			var sum, sumSq float64
			n := 0
			for _, r := range t.Rows {
				if r[ci].IsNull() {
					continue
				}
				f := r[ci].AsFloat()
				sum += f
				sumSq += f * f
				n++
			}
			if n > 0 {
				c.mean = sum / float64(n)
				c.std = math.Sqrt(math.Max(sumSq/float64(n)-c.mean*c.mean, 1e-9))
			} else {
				c.std = 1
			}
			c.width = 1
		case table.KindBool:
			c.width = 1
			c.std = 1
		case table.KindString:
			counts := map[string]int{}
			for _, r := range t.Rows {
				if !r[ci].IsNull() {
					counts[r[ci].Str]++
				}
			}
			type kv struct {
				v string
				n int
			}
			var all []kv
			for val, n := range counts {
				all = append(all, kv{val, n})
			}
			sort.Slice(all, func(a, b int) bool {
				if all[a].n != all[b].n {
					return all[a].n > all[b].n
				}
				return all[a].v < all[b].v
			})
			top := opts.TopValues
			if top > len(all) {
				top = len(all)
			}
			for _, e := range all[:top] {
				c.values = append(c.values, e.v)
			}
			c.values = append(c.values, "\x00other")
			c.width = len(c.values)
		default:
			c.width = 1
			c.std = 1
		}
		offset += c.width
		v.codecs = append(v.codecs, c)
	}
	v.featDim = offset
}

// encodeRow maps a row into the feature space.
func (v *VAE) encodeRow(r table.Row) []float64 {
	x := make([]float64, v.featDim)
	for fi, c := range v.codecs {
		val := r[fi]
		switch c.col.Kind {
		case table.KindInt, table.KindFloat:
			if !val.IsNull() {
				x[c.start] = (val.AsFloat() - c.mean) / c.std
			}
		case table.KindBool:
			if !val.IsNull() && val.Bool {
				x[c.start] = 1
			}
		case table.KindString:
			slot := len(c.values) - 1 // other
			for i, cand := range c.values[:len(c.values)-1] {
				if cand == val.Str {
					slot = i
					break
				}
			}
			x[c.start+slot] = 1
		}
	}
	return x
}

// decodeRow maps a decoded feature vector back into a table row. Categorical
// slots decode by argmax ("other" resolves to the most common real value),
// numerics de-standardize, and integer columns round.
func (v *VAE) decodeRow(x []float64) table.Row {
	r := make(table.Row, len(v.codecs))
	for fi, c := range v.codecs {
		switch c.col.Kind {
		case table.KindInt:
			r[fi] = table.NewInt(int64(math.Round(x[c.start]*c.std + c.mean)))
		case table.KindFloat:
			r[fi] = table.NewFloat(x[c.start]*c.std + c.mean)
		case table.KindBool:
			r[fi] = table.NewBool(x[c.start] > 0.5)
		case table.KindString:
			best, bestV := 0, math.Inf(-1)
			for i := 0; i < c.width; i++ {
				if x[c.start+i] > bestV {
					best, bestV = i, x[c.start+i]
				}
			}
			val := c.values[best]
			if val == "\x00other" && len(c.values) > 1 {
				val = c.values[0]
			}
			r[fi] = table.NewString(val)
		default:
			r[fi] = table.Null
		}
	}
	return r
}

// Generate synthesizes n tuples by decoding z ~ N(0, I).
func (v *VAE) Generate(n int) *table.Table {
	out := table.New(v.tableName, v.schema)
	z := make([]float64, v.latent)
	for i := 0; i < n; i++ {
		for j := range z {
			z[j] = v.rng.NormFloat64()
		}
		out.AppendRow(v.decodeRow(v.decoder.Forward(z)))
	}
	return out
}

// GenerateDatabase trains one VAE per table of db and generates a synthetic
// database with per-table sizes proportional to the original, totalling k
// tuples — the generative counterpart of an approximation set.
func GenerateDatabase(db *table.Database, k int, opts Options) (*table.Database, error) {
	total := db.TotalRows()
	if total == 0 {
		return nil, fmt.Errorf("generative: empty database")
	}
	out := table.NewDatabase()
	for _, t := range db.Tables() {
		quota := int(float64(k) * float64(t.NumRows()) / float64(total))
		if t.NumRows() == 0 || quota == 0 {
			out.Add(table.New(t.Name, t.Schema))
			continue
		}
		v, err := TrainVAE(t, opts)
		if err != nil {
			return nil, err
		}
		out.Add(v.Generate(quota))
	}
	return out, nil
}

// ReconstructionError reports the mean squared reconstruction error over a
// sample of rows — a training-quality diagnostic used in tests.
func (v *VAE) ReconstructionError(t *table.Table, maxRows int) float64 {
	n := t.NumRows()
	if n == 0 {
		return 0
	}
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	var total float64
	for i := 0; i < n; i++ {
		x := v.encodeRow(t.Rows[i])
		mu := v.encoder.Forward(x)[:v.latent]
		xhat := v.decoder.Forward(mu)
		for j := range x {
			d := xhat[j] - x[j]
			total += d * d
		}
	}
	return total / float64(n*v.featDim)
}

// tableNameOf helps tests introspect.
func (v *VAE) TableName() string { return strings.ToLower(v.tableName) }
