package engine

import (
	"context"
	"math"
	"testing"

	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// TestMorselsSkippedCounter pins the zone-map pruning telemetry: on a sorted
// column, a selective range predicate must skip exactly the morsels whose
// zone cannot satisfy it, and the engine/morsels_skipped counter must record
// them (only when observability is enabled, and never on the row engine,
// which has no zones).
func TestMorselsSkippedCounter(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)

	tbl := table.New("sorted", table.Schema{{Name: "v", Kind: table.KindInt}})
	n := 8 * table.ZoneChunkRows
	for i := 0; i < n; i++ {
		tbl.AppendRow(table.Row{table.NewInt(int64(i))})
	}
	db := table.NewDatabase()
	db.Add(tbl)
	// Chunks 0..5 top out at 6*ZoneChunkRows-1 < 7000 ≤ values in chunk 6, so
	// exactly 6 of the 8 morsels are prunable.
	stmt := sqlparse.MustParse("SELECT * FROM sorted WHERE v >= 7000")

	obs.SetEnabled(true)
	obs.Default().Reset()
	res, err := ExecuteWith(db, stmt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := n - 7000; res.Table.NumRows() != want {
		t.Fatalf("rows = %d, want %d", res.Table.NumRows(), want)
	}
	if skipped := obs.Default().Snapshot().Counters["engine/morsels_skipped"]; skipped != 6 {
		t.Fatalf("engine/morsels_skipped = %d, want 6", skipped)
	}

	// The row engine scans every row and must not touch the counter.
	obs.Default().Reset()
	if _, err := ExecuteWith(db, stmt, Options{UseRowEngine: true}); err != nil {
		t.Fatal(err)
	}
	if skipped := obs.Default().Snapshot().Counters["engine/morsels_skipped"]; skipped != 0 {
		t.Fatalf("row engine recorded %d skipped morsels", skipped)
	}

	// Disabled observability records nothing even though pruning still runs.
	obs.SetEnabled(false)
	obs.Default().Reset()
	if _, err := ExecuteWith(db, stmt, Options{}); err != nil {
		t.Fatal(err)
	}
	if skipped := obs.Default().Snapshot().Counters["engine/morsels_skipped"]; skipped != 0 {
		t.Fatalf("disabled observability recorded %d skipped morsels", skipped)
	}
	obs.Default().Reset()
}

// TestColumnarCountFastPath checks that CountContext — which takes the
// count-only columnar path that materializes no output columns — agrees with
// the row engine on filter, join, and unfiltered shapes.
func TestColumnarCountFastPath(t *testing.T) {
	db := testDB()
	for _, sql := range []string{
		"SELECT * FROM movies",
		"SELECT * FROM movies WHERE year > 2000",
		"SELECT m.title FROM movies m JOIN credits c ON m.id = c.movie_id",
		"SELECT m.title FROM movies m JOIN credits c ON m.id = c.movie_id WHERE c.role = 'director'",
	} {
		stmt := sqlparse.MustParse(sql)
		rowN, err := CountContext(context.Background(), db, stmt, Options{UseRowEngine: true})
		if err != nil {
			t.Fatalf("%s (row): %v", sql, err)
		}
		colN, err := CountContext(context.Background(), db, stmt, Options{})
		if err != nil {
			t.Fatalf("%s (columnar): %v", sql, err)
		}
		if rowN != colN {
			t.Errorf("%s: row count %d != columnar count %d", sql, rowN, colN)
		}
	}
}

// TestColumnarNaNComparisonParity is the regression test for the NaN corner
// of the vectorized comparison kernels: Value.Compare treats NaN as equal to
// everything (it returns 0 when either side is unordered), so the row engine
// passes NaN through <=, >= and BETWEEN but not <, > — and the kernels plus
// the zone maps must reproduce that exactly.
func TestColumnarNaNComparisonParity(t *testing.T) {
	tbl := table.New("nt", table.Schema{{Name: "f", Kind: table.KindFloat}})
	tbl.AppendRow(table.Row{table.NewFloat(1)})
	tbl.AppendRow(table.Row{table.NewFloat(2)})
	tbl.AppendRow(table.Row{table.NewFloat(math.NaN())})
	db := table.NewDatabase()
	db.Add(tbl)
	for _, tc := range []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM nt WHERE f >= 5", 1},            // NaN only
		{"SELECT * FROM nt WHERE f <= 0", 1},            // NaN only
		{"SELECT * FROM nt WHERE f > 5", 0},             // NaN excluded by strict compare
		{"SELECT * FROM nt WHERE f < 5", 2},             // 1 and 2, not NaN
		{"SELECT * FROM nt WHERE f BETWEEN 5 AND 9", 1}, // NaN is BETWEEN everything
		{"SELECT * FROM nt WHERE f BETWEEN 0 AND 3", 3},
		{"SELECT * FROM nt WHERE f = 5", 0}, // equality uses Value.Equal: NaN never equal
		{"SELECT * FROM nt WHERE f <> 5", 3},
	} {
		stmt := sqlparse.MustParse(tc.sql)
		row, err := ExecuteWith(db, stmt, Options{UseRowEngine: true, TrackLineage: true})
		if err != nil {
			t.Fatalf("%s (row): %v", tc.sql, err)
		}
		col, err := ExecuteWith(db, stmt, Options{TrackLineage: true})
		if err != nil {
			t.Fatalf("%s (columnar): %v", tc.sql, err)
		}
		if got := row.Table.NumRows(); got != tc.want {
			t.Errorf("%s: row engine returned %d rows, want %d", tc.sql, got, tc.want)
		}
		if rf, cf := resultFingerprint(row), resultFingerprint(col); rf != cf {
			t.Errorf("%s: columnar diverges from row engine\nrow:\n%s\ncolumnar:\n%s", tc.sql, rf, cf)
		}
	}
}
