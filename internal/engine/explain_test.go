package engine

import (
	"strings"
	"testing"

	"asqprl/internal/sqlparse"
)

func TestExplainJoinPlan(t *testing.T) {
	db := testDB()
	plan, err := Explain(db, sqlparse.MustParse(
		"SELECT m.title FROM movies m JOIN credits c ON m.id = c.movie_id WHERE m.year > 2000 AND c.role = 'director' ORDER BY m.title LIMIT 5"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"scan m", "scan c",
		"filter: m.year > 2000", "filter: c.role = 'director'",
		"hash join c on m.id = c.movie_id",
		"project", "sort by m.title", "limit 5",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainCrossAndAggregate(t *testing.T) {
	db := testDB()
	plan, err := Explain(db, sqlparse.MustParse(
		"SELECT genre, COUNT(*) FROM movies, credits GROUP BY genre HAVING COUNT(*) > 1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cross join credits", "hash aggregate by genre", "having: COUNT(*) > 1"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainResidualPredicate(t *testing.T) {
	db := testDB()
	plan, err := Explain(db, sqlparse.MustParse(
		"SELECT m.id FROM movies m, credits c WHERE m.id = c.movie_id AND m.year + c.movie_id > 2000"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "residual filter") {
		t.Errorf("plan missing residual filter:\n%s", plan)
	}
}

func TestPlanShape(t *testing.T) {
	db := testDB()
	cases := []struct {
		sql, want string
	}{
		{"SELECT * FROM movies", "scan1"},
		{"SELECT * FROM movies WHERE year > 2000 ORDER BY title LIMIT 5", "scan1+sort+limit"},
		{"SELECT m.title FROM movies m JOIN credits c ON m.id = c.movie_id", "scan2-hash1"},
		{"SELECT genre, COUNT(*) FROM movies, credits GROUP BY genre", "scan2-cross1+agg"},
		{"SELECT DISTINCT m.id FROM movies m, credits c WHERE m.id = c.movie_id AND m.year + c.movie_id > 2000", "scan2-hash1-res1+distinct"},
	}
	for _, c := range cases {
		got, err := PlanShape(db, sqlparse.MustParse(c.sql))
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if got != c.want {
			t.Errorf("PlanShape(%s) = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	db := testDB()
	if _, err := Explain(db, sqlparse.MustParse("SELECT * FROM ghost")); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := Explain(db, sqlparse.MustParse("SELECT nope FROM movies")); err == nil {
		t.Error("unknown column should error")
	}
}
