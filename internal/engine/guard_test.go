package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"asqprl/internal/datagen"
	"asqprl/internal/faults"
	"asqprl/internal/sqlparse"
)

func mustParse(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// TestDeadlineExceeded: a query issued with an (already expired) 1ms deadline
// against the synthetic IMDB dataset returns ErrDeadline — not a hang, not a
// panic, not a silent result.
func TestDeadlineExceeded(t *testing.T) {
	db := datagen.IMDB(0.05, 1)
	stmt := mustParse(t, "SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id WHERE t.rating > 1")

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond) // guarantee expiry regardless of machine speed

	res, err := ExecuteContext(ctx, db, stmt)
	if err == nil {
		t.Fatalf("expected deadline error, got %d rows", res.Table.NumRows())
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if GuardKind(err) != "deadline" {
		t.Fatalf("GuardKind = %q, want deadline", GuardKind(err))
	}
}

// TestCancellationMidScan: canceling the context during execution interrupts
// the scan loop via the cooperative per-row checks.
func TestCancellationMidScan(t *testing.T) {
	db := datagen.IMDB(0.2, 1)
	stmt := mustParse(t, "SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id")

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-canceled: the first poll must observe it
	_, err := ExecuteContext(ctx, db, stmt)
	if !errors.Is(err, ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation error, got %v", err)
	}
	if GuardKind(err) != "canceled" {
		t.Fatalf("GuardKind = %q, want canceled", GuardKind(err))
	}
}

// TestMaxOutputRows: tripping the output budget returns ErrRowBudget together
// with the partial rows produced before the trip.
func TestMaxOutputRows(t *testing.T) {
	db := datagen.IMDB(0.05, 1)
	stmt := mustParse(t, "SELECT * FROM title WHERE rating > 0")

	res, err := ExecuteWithContext(context.Background(), db, stmt, Options{MaxOutputRows: 7})
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("want ErrRowBudget, got %v", err)
	}
	if GuardKind(err) != "rows" {
		t.Fatalf("GuardKind = %q, want rows", GuardKind(err))
	}
	if res == nil || res.Table == nil {
		t.Fatal("row-budget trip should carry a partial result")
	}
	if res.Table.NumRows() != 7 {
		t.Fatalf("partial result has %d rows, want 7", res.Table.NumRows())
	}
}

// TestMaxOutputRowsUnderLimit: a budget larger than the result is inert.
func TestMaxOutputRowsUnderLimit(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	stmt := mustParse(t, "SELECT * FROM title WHERE rating > 9.5")
	want, err := Execute(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteWithContext(context.Background(), db, stmt, Options{MaxOutputRows: 1 << 30, TrackLineage: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != want.Table.NumRows() {
		t.Fatalf("guarded result has %d rows, unguarded %d", res.Table.NumRows(), want.Table.NumRows())
	}
}

// TestIntermediateLimitIsRowBudget: the join-intermediate cap reports through
// the same typed error as the output budget.
func TestIntermediateLimitIsRowBudget(t *testing.T) {
	db := datagen.IMDB(0.05, 1)
	stmt := mustParse(t, "SELECT * FROM title t, cast_info c")
	_, err := ExecuteWith(db, stmt, Options{MaxIntermediateRows: 100})
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("want ErrRowBudget for intermediate cap, got %v", err)
	}
}

// TestScanFaultInjection: an error armed at the scan point propagates as a
// typed error instead of a wrong result.
func TestScanFaultInjection(t *testing.T) {
	db := datagen.IMDB(0.02, 1)
	stmt := mustParse(t, "SELECT * FROM title WHERE rating > 5")

	faults.Enable(faults.NewSchedule(1, faults.Injection{Point: faults.PointEngineScan, Kind: faults.KindError}))
	defer faults.Disable()
	_, err := Execute(db, stmt)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}

	faults.Disable()
	if _, err := Execute(db, stmt); err != nil {
		t.Fatalf("after disabling faults execution must succeed, got %v", err)
	}
}

// TestGuardKindUnrelated: non-guard errors map to the empty kind.
func TestGuardKindUnrelated(t *testing.T) {
	if k := GuardKind(errors.New("other")); k != "" {
		t.Fatalf("GuardKind(other) = %q, want empty", k)
	}
	if k := GuardKind(nil); k != "" {
		t.Fatalf("GuardKind(nil) = %q, want empty", k)
	}
}

// TestNilGuardTick: the nil guard is inert (the unguarded fast path).
func TestNilGuardTick(t *testing.T) {
	var g *guard
	for i := 0; i < 3*guardInterval; i++ {
		if err := g.tick(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.out(1); err != nil {
		t.Fatal(err)
	}
	if err := g.poll(); err != nil {
		t.Fatal(err)
	}
}
