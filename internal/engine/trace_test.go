package engine

import (
	"context"
	"testing"

	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
)

// findSpan returns the first span named name in the snapshot tree.
func findSpan(snap obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	if snap.Name == name {
		return &snap
	}
	for _, c := range snap.Children {
		if got := findSpan(c, name); got != nil {
			return got
		}
	}
	return nil
}

func TestOperatorSpansUnderTracedContext(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })

	ctx, root := obs.StartSpan(context.Background(), "test/root")
	stmt := sqlparse.MustParse(
		"SELECT m.title, c.person FROM movies m JOIN credits c ON m.id = c.movie_id WHERE m.rating > 7")
	res, err := ExecuteWithContext(ctx, testDB(), stmt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := root.Snapshot()

	exec := findSpan(snap, "engine/execute")
	if exec == nil {
		t.Fatalf("no engine/execute span under traced context: %+v", snap)
	}
	if exec.TraceID != root.TraceID().String() {
		t.Errorf("engine span trace ID %s, want root's %s", exec.TraceID, root.TraceID())
	}
	if shape, _ := exec.Attrs["plan"].(string); shape == "" {
		t.Error("engine/execute missing plan shape annotation")
	}
	if rows, _ := exec.Attrs["rows_out"].(int); rows != res.Table.NumRows() {
		t.Errorf("engine/execute rows_out = %v, want %d", exec.Attrs["rows_out"], res.Table.NumRows())
	}

	scan := findSpan(snap, "engine/scan")
	if scan == nil {
		t.Fatal("no engine/scan span")
	}
	// Per-relation row counts are keyed by binding name (the alias).
	for _, rel := range []string{"rows/m", "rows/c"} {
		if _, ok := scan.Attrs[rel]; !ok {
			t.Errorf("engine/scan missing %s row count; attrs %v", rel, scan.Attrs)
		}
	}
	join := findSpan(snap, "engine/join")
	if join == nil {
		t.Fatal("no engine/join span")
	}
	if _, ok := join.Attrs["rows_out"]; !ok {
		t.Errorf("engine/join missing rows_out; attrs %v", join.Attrs)
	}
	if proj := findSpan(snap, "engine/project"); proj == nil {
		t.Error("no engine/project span")
	}
}

// TestUntracedContextCreatesNoSpans guards the training/scoring hot loop:
// without a span in the context, execution must not open spans even when
// observability is enabled.
func TestUntracedContextCreatesNoSpans(t *testing.T) {
	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(wasEnabled) })
	obs.ResetSpans()
	stmt := sqlparse.MustParse("SELECT title FROM movies WHERE year > 2000")
	if _, err := ExecuteWithContext(context.Background(), testDB(), stmt, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := len(obs.RecentSpans()); got != 0 {
		t.Errorf("untraced execution published %d root spans, want 0", got)
	}
}
