package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"asqprl/internal/faults"
	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// Columnar execution pipeline. The operators here mirror the row engine
// (runJoins/scanRelations/joinStep/project/finish) operator for operator —
// same spans, same fault-injection points, same guard tick/budget accounting,
// same morsel-order merges — but carry intermediates as a joinedBatch
// (struct-of-arrays of row indices) instead of []joinedRow, evaluate filters
// through vectorized kernels (kernels.go) with zone-map morsel skipping, and
// hash-join on fixed-size typed keys instead of materialized key strings.
// Results are byte-identical to the row engine at every worker count; the
// differential fuzz harness (fuzz_differential_test.go) enforces this.

// morselRows must equal table.ZoneChunkRows so zone-map entry m summarizes
// exactly morsel m. This constant fails to compile if they diverge.
const _ = -uint(morselRows - table.ZoneChunkRows)

// joinedBatch is the columnar join intermediate: one row-index column per
// relation (nil for relations not yet bound), all bound columns of length n.
// It is the struct-of-arrays equivalent of []joinedRow.
type joinedBatch struct {
	n    int
	cols [][]int32
}

// boundRels returns the bound relation indices in ascending order.
func (jb *joinedBatch) boundRels() []int {
	out := make([]int, 0, len(jb.cols))
	for r, c := range jb.cols {
		if c != nil {
			out = append(out, r)
		}
	}
	return out
}

// gather compacts the batch down to the given batch-row indices (ascending),
// producing fresh columns (the input batch may share candidate slices).
func (jb *joinedBatch) gather(keep []int32) *joinedBatch {
	out := &joinedBatch{n: len(keep), cols: make([][]int32, len(jb.cols))}
	for r, c := range jb.cols {
		if c == nil {
			continue
		}
		nc := make([]int32, len(keep))
		for k, idx := range keep {
			nc[k] = c[idx]
		}
		out.cols[r] = nc
	}
	return out
}

// tickChunks accounts n rows against the guard in guardInterval-sized chunks,
// preserving the serial row loop's poll cadence.
func tickChunks(g *guard, n int) error {
	for n > 0 {
		c := n
		if c > guardInterval {
			c = guardInterval
		}
		if err := g.tick(c); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// identitySel returns [0, 1, ..., n).
func identitySel(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// executeColTail is the columnar pipeline after planning: vectorized
// scan/join, then aggregate or project (or a count-only shortcut), then
// finish. Span structure, fault points and guard semantics mirror
// executeRowTail exactly.
func executeColTail(b *binder, stmt *sqlparse.Select, preds []predClass, opts Options, t *queryTimer, g *guard, span *obs.Span) (*Result, error) {
	// Count-only SPJ needs no output columns at all, which lets the join
	// pipeline prune every batch column not consumed by a later join step.
	countOnly := opts.countOnly && !opts.TrackLineage && countableStmt(stmt)
	jb, err := runJoinsCol(b, preds, opts, g, span, !countOnly)
	if err != nil {
		return nil, err
	}
	t.phase("join")

	if stmt.HasAggregates() {
		aggSpan := span.StartChild("engine/aggregate")
		out, err := aggregateCol(b, stmt, jb, g)
		if err != nil {
			markSpanOutcome(aggSpan, err)
			aggSpan.End()
			return nil, err
		}
		aggSpan.Annotate("rows_out", out.NumRows())
		aggSpan.End()
		t.phase("aggregate")
		res := &Result{Table: out}
		res, err = finish(b, stmt, res, nil, true)
		t.phase("finish")
		return res, err
	}

	if countOnly {
		// Count-only SPJ: the projection is infallible and DISTINCT/ORDER
		// BY/LIMIT are absent, so the answer is the join cardinality — skip
		// materializing output rows entirely. Guard accounting replicates the
		// projection loop's per-row tick and output-budget charge.
		projSpan := span.StartChild("engine/project")
		finishProj := func(err error) error {
			markSpanOutcome(projSpan, err)
			projSpan.End()
			return err
		}
		if faults.Active() {
			if err := faults.Inject(faults.PointEngineProject); err != nil {
				return nil, finishProj(err)
			}
		}
		if err := tickChunks(g, jb.n); err != nil {
			return nil, finishProj(err)
		}
		if err := g.out(jb.n); err != nil {
			return nil, finishProj(err)
		}
		projSpan.Annotate("rows_out", jb.n)
		projSpan.End()
		t.phase("project")
		t.phase("finish")
		return &Result{Count: jb.n}, nil
	}

	projSpan := span.StartChild("engine/project")
	out, lineage, err := projectCol(b, stmt, jb, opts, g)
	if err != nil {
		markSpanOutcome(projSpan, err)
		if out != nil {
			projSpan.Annotate("rows_out", out.NumRows())
		}
		projSpan.End()
		if out != nil {
			return &Result{Table: out, Lineage: lineage}, err
		}
		return nil, err
	}
	projSpan.Annotate("rows_out", out.NumRows())
	projSpan.End()
	t.phase("project")
	res := &Result{Table: out, Lineage: lineage}
	res, err = finishCol(b, stmt, res, jb)
	t.phase("finish")
	return res, err
}

// countableStmt reports whether a statement's cardinality equals its join
// cardinality with an infallible projection: plain SPJ (no aggregates,
// DISTINCT, ORDER BY or LIMIT) projecting only columns and literals.
func countableStmt(stmt *sqlparse.Select) bool {
	if stmt.HasAggregates() || stmt.Distinct || len(stmt.OrderBy) > 0 || stmt.Limit >= 0 {
		return false
	}
	if stmt.Star {
		return true
	}
	for _, it := range stmt.Items {
		switch it.Expr.(type) {
		case *sqlparse.ColumnRef, *sqlparse.Literal:
		default:
			return false
		}
	}
	return true
}

// neededAfterStep reports which relations' batch columns must survive the
// join step that binds relation `step`: those referenced by a predicate that
// is applied at a later step (equi-join or residual whose maximum relation
// exceeds step), plus everything when the final consumer reads columns
// (finalNeeds). Count-only execution passes finalNeeds=false, so the last
// join step materializes no columns at all and reduces to counting matches.
func neededAfterStep(preds []predClass, nRel, step int, finalNeeds bool) []bool {
	needed := make([]bool, nRel)
	if finalNeeds {
		for r := range needed {
			needed[r] = true
		}
		return needed
	}
	for _, p := range preds {
		if len(p.rels) == 0 {
			continue
		}
		if p.rels[len(p.rels)-1] > step {
			for _, r := range p.rels {
				needed[r] = true
			}
		}
	}
	return needed
}

// runJoinsCol executes the vectorized scan + join pipeline, returning the
// joined batch. Span and fault behavior mirror runJoins. finalNeeds=false
// (count-only) lets join steps prune batch columns that no later predicate
// reads; jb.n is exact either way.
func runJoinsCol(b *binder, preds []predClass, opts Options, g *guard, span *obs.Span, finalNeeds bool) (out *joinedBatch, err error) {
	n := len(b.tables)

	scanSpan := span.StartChild("engine/scan")
	var skipped int64
	candidates, err := scanRelationsCol(b, preds, opts, g, &skipped)
	if err != nil {
		markSpanOutcome(scanSpan, err)
		scanSpan.End()
		return nil, err
	}
	if scanSpan != nil {
		for rel := 0; rel < n; rel++ {
			scanSpan.Annotate("rows/"+b.refs[rel].Name(), len(candidates[rel]))
		}
		if skipped > 0 {
			scanSpan.Annotate("morsels_skipped", skipped)
		}
	}
	scanSpan.End()
	if skipped > 0 && obs.Enabled() {
		obs.Default().Counter("engine/morsels_skipped").Add(skipped)
	}

	joinSpan := span.StartChild("engine/join")
	defer func() {
		if err != nil {
			markSpanOutcome(joinSpan, err)
		} else {
			joinSpan.Annotate("rows_out", out.n)
		}
		joinSpan.End()
	}()

	cur := &joinedBatch{n: len(candidates[0]), cols: make([][]int32, n)}
	cur.cols[0] = candidates[0]

	bound := map[int]bool{0: true}
	for rel := 1; rel < n; rel++ {
		var joins []predClass
		for _, p := range preds {
			if !p.isEquiJoin {
				continue
			}
			a, c := p.leftBind.rel, p.rightBind.rel
			if (a == rel && bound[c]) || (c == rel && bound[a]) {
				joins = append(joins, p)
			}
		}
		needed := neededAfterStep(preds, n, rel, finalNeeds)
		next, err := joinStepCol(b, cur, candidates[rel], rel, joins, needed, opts, g)
		if err != nil {
			return nil, err
		}
		cur = next
		bound[rel] = true

		for _, p := range preds {
			if p.isEquiJoin || len(p.rels) < 2 {
				continue
			}
			if p.rels[len(p.rels)-1] != rel {
				continue
			}
			allBound := true
			for _, r := range p.rels {
				if !bound[r] {
					allBound = false
					break
				}
			}
			if !allBound {
				continue
			}
			keep := make([]int32, 0, cur.n)
			env := evalEnv{b: b, batch: cur}
			for idx := 0; idx < cur.n; idx++ {
				if err := g.tick(1); err != nil {
					return nil, err
				}
				env.idx = idx
				v, err := evalExpr(p.expr, env)
				if err != nil {
					return nil, err
				}
				if !v.IsNull() && truthy(v) {
					keep = append(keep, int32(idx))
				}
			}
			cur = cur.gather(keep)
		}
	}
	return cur, nil
}

// scanRelationsCol is the vectorized scan phase: per relation, filters
// compile to kernels and run over morsel-sized selection vectors, with
// zone-map pruning skipping whole morsels (counted in *skipped). Relations
// whose filters do not compile fall back to the row engine's per-row scan so
// evaluation-error ordering is preserved.
func scanRelationsCol(b *binder, preds []predClass, opts Options, g *guard, skipped *int64) ([][]int32, error) {
	n := len(b.tables)
	candidates := make([][]int32, n)
	for rel := 0; rel < n; rel++ {
		if faults.Active() {
			if err := faults.Inject(faults.PointEngineScan); err != nil {
				return nil, err
			}
		}
		filters := relFilters(preds, rel)
		nRows := len(b.tables[rel].Rows)
		if len(filters) == 0 {
			if err := tickChunks(g, nRows); err != nil {
				return nil, err
			}
			candidates[rel] = identitySel(nRows)
			continue
		}
		cs := b.tables[rel].Columns()
		ks, ok := compileFilters(b, rel, cs, filters)
		if !ok {
			keep, err := scanRelationRows(b, rel, filters, opts, g)
			if err != nil {
				return nil, err
			}
			candidates[rel] = keep
			continue
		}
		keep, err := scanKernels(ks, nRows, opts, g, skipped)
		if err != nil {
			return nil, err
		}
		candidates[rel] = keep
	}
	return candidates, nil
}

// scanKernels runs compiled filter kernels over all morsels of a relation,
// serially or across workers, merging survivors in morsel order.
func scanKernels(ks []kernel, nRows int, opts Options, g *guard, skipped *int64) ([]int32, error) {
	if nRows == 0 {
		return []int32{}, nil
	}
	nm := morselCount(nRows)
	if workers := opts.workers(); workers > 1 && nRows >= parallelMinRows {
		keeps := make([][]int32, nm)
		var skippedPar int64
		err := forEachMorsel(workers, nRows, func(m, lo, hi int) error {
			if err := g.poll(); err != nil {
				return err
			}
			if pruneMorsel(ks, m) {
				atomic.AddInt64(&skippedPar, 1)
				return nil
			}
			sel := identityRange(lo, hi)
			for _, k := range ks {
				sel = k.sel(sel)
				if len(sel) == 0 {
					break
				}
			}
			keeps[m] = sel
			return nil
		})
		if err != nil {
			return nil, err
		}
		*skipped += skippedPar
		total := 0
		for _, k := range keeps {
			total += len(k)
		}
		out := make([]int32, 0, total)
		for _, k := range keeps {
			out = append(out, k...)
		}
		return out, nil
	}

	var out []int32
	selBuf := make([]int32, 0, morselRows)
	for m := 0; m < nm; m++ {
		lo := m * morselRows
		hi := lo + morselRows
		if hi > nRows {
			hi = nRows
		}
		if err := g.tick(hi - lo); err != nil {
			return nil, err
		}
		if pruneMorsel(ks, m) {
			*skipped++
			continue
		}
		sel := selBuf[:0]
		for i := lo; i < hi; i++ {
			sel = append(sel, int32(i))
		}
		for _, k := range ks {
			sel = k.sel(sel)
			if len(sel) == 0 {
				break
			}
		}
		out = append(out, sel...)
	}
	if out == nil {
		out = []int32{}
	}
	return out, nil
}

func identityRange(lo, hi int) []int32 {
	out := make([]int32, hi-lo)
	for i := range out {
		out[i] = int32(lo + i)
	}
	return out
}

// joinKey is a fixed-size hash-join key mirroring Value.Key's equivalence
// classes without materializing strings: ints and integral floats share
// tagNum, non-integral floats use canonicalized bits (every NaN payload maps
// to one key, like FormatFloat), strings use dictionary codes, bools two
// values. NULLs never produce a key (rows are skipped, as in the row path).
type joinKey struct {
	tag  uint8
	bits uint64
}

const (
	tagNum  uint8 = iota // int, or float with an exact int64 value
	tagFrac              // non-integral float (canonical NaN bits)
	tagStr               // dictionary code (build-side space for joins)
	tagBool
	tagNull // NULL (grouping keys only; join keyers skip NULL rows)
	tagMiss // probe-side string absent from the build dictionary: matches nothing
)

// joinKeyN is a composite key for joins on up to 4 column pairs (unused
// positions stay zero; every row of one join uses the same pair count).
type joinKeyN struct {
	k [4]joinKey
}

const maxFastJoinPairs = 4

func floatJoinKey(f float64) joinKey {
	// Same integral test as Value.Key, so int/float key unification matches.
	if f == float64(int64(f)) {
		return joinKey{tagNum, uint64(int64(f))}
	}
	if f != f {
		return joinKey{tagFrac, math.Float64bits(math.NaN())}
	}
	return joinKey{tagFrac, math.Float64bits(f)}
}

// columnJoinKeyer builds a per-row key extractor over column c. ok=false
// means NULL (the row does not participate). xlat, for string columns on the
// probe side, translates c's dictionary codes into the build-side dictionary
// space (-1 = absent, which yields tagMiss and can match nothing).
func columnJoinKeyer(c *table.ColumnData, xlat []int32) func(int32) (joinKey, bool) {
	nulls := c.Nulls
	switch c.Kind {
	case table.KindInt:
		vals := c.Ints
		return func(i int32) (joinKey, bool) {
			if nulls != nil && nulls.Get(int(i)) {
				return joinKey{}, false
			}
			return joinKey{tagNum, uint64(vals[i])}, true
		}
	case table.KindFloat:
		vals := c.Floats
		return func(i int32) (joinKey, bool) {
			if nulls != nil && nulls.Get(int(i)) {
				return joinKey{}, false
			}
			return floatJoinKey(vals[i]), true
		}
	case table.KindString:
		codes := c.Codes
		if xlat == nil {
			return func(i int32) (joinKey, bool) {
				if nulls != nil && nulls.Get(int(i)) {
					return joinKey{}, false
				}
				return joinKey{tagStr, uint64(codes[i])}, true
			}
		}
		return func(i int32) (joinKey, bool) {
			if nulls != nil && nulls.Get(int(i)) {
				return joinKey{}, false
			}
			bc := xlat[codes[i]]
			if bc < 0 {
				return joinKey{tag: tagMiss}, true
			}
			return joinKey{tagStr, uint64(bc)}, true
		}
	case table.KindBool:
		vals := c.Bools
		return func(i int32) (joinKey, bool) {
			if nulls != nil && nulls.Get(int(i)) {
				return joinKey{}, false
			}
			var bits uint64
			if vals[i] {
				bits = 1
			}
			return joinKey{tagBool, bits}, true
		}
	}
	return nil // Mixed; callers must check before asking for a keyer
}

// columnGroupKeyer is columnJoinKeyer for GROUP BY keys, where NULL is a
// legitimate grouping value (tagNull) rather than a skipped row.
func columnGroupKeyer(c *table.ColumnData) func(int32) joinKey {
	jk := columnJoinKeyer(c, nil)
	return func(i int32) joinKey {
		k, ok := jk(i)
		if !ok {
			return joinKey{tag: tagNull}
		}
		return k
	}
}

// joinStepCol binds relation rel into the batch: hash join on typed keys when
// equi-join predicates connect it (byte-key fallback for mixed-kind columns
// or >4 pairs), cross product otherwise. needed[r] gates which relations'
// columns the output batch materializes (jb.n is exact regardless). Guard
// accounting, budget trip points and output order mirror joinStep.
func joinStepCol(b *binder, cur *joinedBatch, cand []int32, rel int, joins []predClass, needed []bool, opts Options, g *guard) (*joinedBatch, error) {
	if faults.Active() {
		if err := faults.Inject(faults.PointEngineJoin); err != nil {
			return nil, err
		}
	}
	emitBound := make([]int, 0, len(cur.cols))
	for _, r := range cur.boundRels() {
		if needed[r] {
			emitBound = append(emitBound, r)
		}
	}
	relNeeded := needed[rel]

	if len(joins) == 0 {
		if cur.n*len(cand) > opts.MaxIntermediateRows {
			return nil, fmt.Errorf("%w: cross product of %d x %d rows exceeds limit %d", ErrRowBudget, cur.n, len(cand), opts.MaxIntermediateRows)
		}
		total := cur.n * len(cand)
		out := &joinedBatch{n: total, cols: make([][]int32, len(cur.cols))}
		if len(emitBound) == 0 && !relNeeded {
			return out, tickChunks(g, total)
		}
		for _, r := range emitBound {
			out.cols[r] = make([]int32, 0, total)
		}
		var relCol []int32
		if relNeeded {
			relCol = make([]int32, 0, total)
		}
		for idx := 0; idx < cur.n; idx++ {
			for _, ri := range cand {
				if err := g.tick(1); err != nil {
					return nil, err
				}
				for _, r := range emitBound {
					out.cols[r] = append(out.cols[r], cur.cols[r][idx])
				}
				if relNeeded {
					relCol = append(relCol, ri)
				}
			}
		}
		out.cols[rel] = relCol
		return out, nil
	}

	pairs := make([]joinKeyPair, len(joins))
	for i, p := range joins {
		if p.leftBind.rel == rel {
			pairs[i] = joinKeyPair{relCol: p.leftBind, boundBind: p.rightBind}
		} else {
			pairs[i] = joinKeyPair{relCol: p.rightBind, boundBind: p.leftBind}
		}
	}

	fast := len(pairs) <= maxFastJoinPairs
	relCS := b.tables[rel].Columns()
	for _, kp := range pairs {
		if relCS.Cols[kp.relCol.col].Mixed {
			fast = false
			break
		}
		if b.tables[kp.boundBind.rel].Columns().Cols[kp.boundBind.col].Mixed {
			fast = false
			break
		}
	}
	if fast {
		return joinStepColFast(b, cur, cand, rel, pairs, emitBound, relNeeded, opts, g)
	}
	return joinStepColBytes(b, cur, cand, rel, pairs, emitBound, relNeeded, opts, g)
}

// buildHashCol builds the hash table over rel's candidates keyed by key
// (NULL rows, ok=false, are skipped — NULL never joins). Buckets are held by
// pointer so each candidate costs one map access.
func buildHashCol[K comparable](cand []int32, key func(int32) (K, bool), g *guard) (map[K]*[]int32, error) {
	build := make(map[K]*[]int32, len(cand))
	for _, ri := range cand {
		if err := g.tick(1); err != nil {
			return nil, err
		}
		k, ok := key(ri)
		if !ok {
			continue
		}
		bucket := build[k]
		if bucket == nil {
			bucket = new([]int32)
			build[k] = bucket
		}
		*bucket = append(*bucket, ri)
	}
	return build, nil
}

// joinStepColFast hash-joins on fixed-size typed keys. Single-pair joins (the
// overwhelmingly common case) key the hash table on a bare 16-byte joinKey;
// multi-pair joins use the composite joinKeyN.
func joinStepColFast(b *binder, cur *joinedBatch, cand []int32, rel int, pairs []joinKeyPair, emitBound []int, relNeeded bool, opts Options, g *guard) (*joinedBatch, error) {
	relCS := b.tables[rel].Columns()
	bkeyers := make([]func(int32) (joinKey, bool), len(pairs))
	pkeyers := make([]func(int32) (joinKey, bool), len(pairs))
	probeCols := make([][]int32, len(pairs))
	for pi, kp := range pairs {
		bc := &relCS.Cols[kp.relCol.col]
		bkeyers[pi] = columnJoinKeyer(bc, nil)
		pc := &b.tables[kp.boundBind.rel].Columns().Cols[kp.boundBind.col]
		var xlat []int32
		if pc.Kind == table.KindString && bc.Kind == table.KindString {
			xlat = make([]int32, pc.Dict.Len())
			for ci, s := range pc.Dict.Strs {
				if code, ok := bc.Dict.Code(s); ok {
					xlat[ci] = code
				} else {
					xlat[ci] = -1
				}
			}
		}
		pkeyers[pi] = columnJoinKeyer(pc, xlat)
		probeCols[pi] = cur.cols[kp.boundBind.rel]
	}

	if len(pairs) == 1 {
		build, err := buildHashCol(cand, bkeyers[0], g)
		if err != nil {
			return nil, err
		}
		pk, pcol := pkeyers[0], probeCols[0]
		probeKey := func(idx int) (joinKey, bool) { return pk(pcol[idx]) }
		return probeCol(cur, rel, emitBound, relNeeded, build, probeKey, opts, g)
	}

	buildKey := func(ri int32) (joinKeyN, bool) {
		var kn joinKeyN
		for pi := range bkeyers {
			k, ok := bkeyers[pi](ri)
			if !ok {
				return kn, false
			}
			kn.k[pi] = k
		}
		return kn, true
	}
	build, err := buildHashCol(cand, buildKey, g)
	if err != nil {
		return nil, err
	}
	probeKey := func(idx int) (joinKeyN, bool) {
		var kn joinKeyN
		for pi := range pkeyers {
			k, ok := pkeyers[pi](probeCols[pi][idx])
			if !ok {
				return kn, false
			}
			kn.k[pi] = k
		}
		return kn, true
	}
	return probeCol(cur, rel, emitBound, relNeeded, build, probeKey, opts, g)
}

// probeCol dispatches the probe phase (serial or morsel-parallel).
func probeCol[K comparable](cur *joinedBatch, rel int, emitBound []int, relNeeded bool, build map[K]*[]int32, probeKey func(int) (K, bool), opts Options, g *guard) (*joinedBatch, error) {
	if workers := opts.workers(); workers > 1 && cur.n >= parallelMinRows {
		return probeColParallel(cur, rel, emitBound, relNeeded, build, probeKey, opts, g, workers)
	}
	return probeColSerial(cur, rel, emitBound, relNeeded, build, probeKey, opts, g)
}

func errJoinBudget(limit int) error {
	return fmt.Errorf("%w: join intermediate exceeds limit %d rows", ErrRowBudget, limit)
}

// probeColSerial probes the hash table over the batch in row order. With no
// guard and no columns to materialize (count-only tail joins) each probe row
// costs one lookup and a bucket-length add.
func probeColSerial[K comparable](cur *joinedBatch, rel int, emitBound []int, relNeeded bool, build map[K]*[]int32, probeKey func(int) (K, bool), opts Options, g *guard) (*joinedBatch, error) {
	limit := opts.MaxIntermediateRows
	count := 0
	if g == nil && len(emitBound) == 0 && !relNeeded {
		for idx := 0; idx < cur.n; idx++ {
			k, ok := probeKey(idx)
			if !ok {
				continue
			}
			if bucket := build[k]; bucket != nil {
				count += len(*bucket)
				if count > limit {
					return nil, errJoinBudget(limit)
				}
			}
		}
		return &joinedBatch{n: count, cols: make([][]int32, len(cur.cols))}, nil
	}

	outCols := make([][]int32, len(emitBound))
	for i := range outCols {
		outCols[i] = make([]int32, 0, cur.n)
	}
	var relCol []int32
	if relNeeded {
		relCol = make([]int32, 0, cur.n)
	}
	for idx := 0; idx < cur.n; idx++ {
		k, ok := probeKey(idx)
		if !ok {
			continue
		}
		bucket := build[k]
		if bucket == nil {
			continue
		}
		for _, ri := range *bucket {
			if err := g.tick(1); err != nil {
				return nil, err
			}
			for bi, r := range emitBound {
				outCols[bi] = append(outCols[bi], cur.cols[r][idx])
			}
			if relNeeded {
				relCol = append(relCol, ri)
			}
			count++
			if count > limit {
				return nil, errJoinBudget(limit)
			}
		}
	}
	out := &joinedBatch{n: count, cols: make([][]int32, len(cur.cols))}
	for bi, r := range emitBound {
		out.cols[r] = outCols[bi]
	}
	if relNeeded {
		if relCol == nil {
			relCol = []int32{}
		}
		out.cols[rel] = relCol
	}
	return out, nil
}

// probeColParallel fans the probe over workers; per-morsel column chunks are
// merged in morsel order, and row accounting uses one shared atomic counter
// so the budget trips iff total emissions exceed the limit (as serial).
func probeColParallel[K comparable](cur *joinedBatch, rel int, emitBound []int, relNeeded bool, build map[K]*[]int32, probeKey func(int) (K, bool), opts Options, g *guard, workers int) (*joinedBatch, error) {
	nm := morselCount(cur.n)
	width := len(emitBound)
	if relNeeded {
		width++
	}
	chunks := make([][][]int32, nm)
	counts := make([]int, nm)
	var produced atomic.Int64
	limit := int64(opts.MaxIntermediateRows)
	err := forEachMorsel(workers, cur.n, func(m, lo, hi int) error {
		if err := g.poll(); err != nil {
			return err
		}
		mini := make([][]int32, width)
		emitted := 0
		since := 0
		for idx := lo; idx < hi; idx++ {
			k, ok := probeKey(idx)
			if !ok {
				continue
			}
			bucket := build[k]
			if bucket == nil {
				continue
			}
			for _, ri := range *bucket {
				if since++; since >= guardInterval {
					since = 0
					if err := g.poll(); err != nil {
						return err
					}
				}
				for bi, r := range emitBound {
					mini[bi] = append(mini[bi], cur.cols[r][idx])
				}
				if relNeeded {
					mini[width-1] = append(mini[width-1], ri)
				}
				emitted++
				if produced.Add(1) > limit {
					return errJoinBudget(opts.MaxIntermediateRows)
				}
			}
		}
		chunks[m] = mini
		counts[m] = emitted
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	out := &joinedBatch{n: total, cols: make([][]int32, len(cur.cols))}
	for bi, r := range emitBound {
		col := make([]int32, 0, total)
		for _, ch := range chunks {
			if ch != nil {
				col = append(col, ch[bi]...)
			}
		}
		out.cols[r] = col
	}
	if relNeeded {
		relCol := make([]int32, 0, total)
		for _, ch := range chunks {
			if ch != nil {
				relCol = append(relCol, ch[width-1]...)
			}
		}
		out.cols[rel] = relCol
	}
	return out, nil
}

// joinStepColBytes is the byte-key fallback join for mixed-kind key columns
// or joins on more than maxFastJoinPairs pairs. Serial: the fallback is rare
// and the output is identical regardless of workers.
func joinStepColBytes(b *binder, cur *joinedBatch, cand []int32, rel int, pairs []joinKeyPair, emitBound []int, relNeeded bool, opts Options, g *guard) (*joinedBatch, error) {
	build := make(map[string]*[]int32, len(cand))
	var kb []byte
	for _, ri := range cand {
		if err := g.tick(1); err != nil {
			return nil, err
		}
		kb = kb[:0]
		null := false
		for _, kp := range pairs {
			v := b.tables[rel].Rows[ri][kp.relCol.col]
			if v.IsNull() {
				null = true
				break
			}
			kb = v.AppendKey(kb)
			kb = append(kb, 0x1e)
		}
		if null {
			continue
		}
		bucket := build[string(kb)]
		if bucket == nil {
			bucket = new([]int32)
			build[string(kb)] = bucket
		}
		*bucket = append(*bucket, ri)
	}

	outCols := make([][]int32, len(emitBound))
	var relCol []int32
	count := 0
	limit := opts.MaxIntermediateRows
	for idx := 0; idx < cur.n; idx++ {
		kb = kb[:0]
		null := false
		for _, kp := range pairs {
			ri := cur.cols[kp.boundBind.rel][idx]
			v := b.tables[kp.boundBind.rel].Rows[ri][kp.boundBind.col]
			if v.IsNull() {
				null = true
				break
			}
			kb = v.AppendKey(kb)
			kb = append(kb, 0x1e)
		}
		if null {
			continue
		}
		bucket := build[string(kb)]
		if bucket == nil {
			continue
		}
		for _, ri := range *bucket {
			if err := g.tick(1); err != nil {
				return nil, err
			}
			for bi, r := range emitBound {
				outCols[bi] = append(outCols[bi], cur.cols[r][idx])
			}
			if relNeeded {
				relCol = append(relCol, ri)
			}
			count++
			if count > limit {
				return nil, errJoinBudget(limit)
			}
		}
	}
	out := &joinedBatch{n: count, cols: make([][]int32, len(cur.cols))}
	for bi, r := range emitBound {
		if outCols[bi] == nil {
			outCols[bi] = []int32{}
		}
		out.cols[r] = outCols[bi]
	}
	if relNeeded {
		if relCol == nil {
			relCol = []int32{}
		}
		out.cols[rel] = relCol
	}
	return out, nil
}

// buildProjectSchema computes the output schema (and the item list for
// non-star queries), shared by the row and columnar projection paths.
func buildProjectSchema(b *binder, stmt *sqlparse.Select) (table.Schema, []sqlparse.SelectItem) {
	var schema table.Schema
	var items []sqlparse.SelectItem
	if stmt.Star {
		for i, t := range b.tables {
			prefix := b.refs[i].Name()
			for _, c := range t.Schema {
				schema = append(schema, table.Column{Name: prefix + "." + c.Name, Kind: c.Kind})
			}
		}
	} else {
		items = stmt.Items
		for _, it := range items {
			name := it.Alias
			if name == "" {
				name = it.Expr.String()
			}
			schema = append(schema, table.Column{Name: name, Kind: inferKind(b, it.Expr)})
		}
	}
	return schema, items
}

// projectCol materializes the SELECT list over the joined batch. Column
// references and literals read directly; anything else evaluates through the
// batch evalEnv. Budget semantics mirror project (partial rows on output
// budget trip; parallel fan-out only without an output budget).
func projectCol(b *binder, stmt *sqlparse.Select, jb *joinedBatch, opts Options, g *guard) (*table.Table, [][]table.RowID, error) {
	trackLineage := opts.TrackLineage
	if faults.Active() {
		if err := faults.Inject(faults.PointEngineProject); err != nil {
			return nil, nil, err
		}
	}
	schema, items := buildProjectSchema(b, stmt)
	emit := makeRowEmitter(b, stmt, items, schema, jb)

	if workers := opts.workers(); workers > 1 && jb.n >= parallelMinRows && (g == nil || g.maxOutput <= 0) {
		return projectColParallel(b, schema, jb, emit, trackLineage, g, workers)
	}

	out := table.New("result", schema)
	var lineage [][]table.RowID
	if trackLineage {
		lineage = make([][]table.RowID, 0, jb.n)
	}
	for idx := 0; idx < jb.n; idx++ {
		if err := g.tick(1); err != nil {
			return nil, nil, err
		}
		if err := g.out(1); err != nil {
			return out, lineage, err
		}
		row, err := emit(idx)
		if err != nil {
			return nil, nil, err
		}
		out.AppendRow(row)
		if trackLineage {
			lineage = append(lineage, batchLineageOf(b, jb, idx))
		}
	}
	return out, lineage, nil
}

// makeRowEmitter compiles the projection into a per-row materializer.
func makeRowEmitter(b *binder, stmt *sqlparse.Select, items []sqlparse.SelectItem, schema table.Schema, jb *joinedBatch) func(idx int) (table.Row, error) {
	if stmt.Star {
		width := len(schema)
		return func(idx int) (table.Row, error) {
			row := make(table.Row, 0, width)
			for rel, t := range b.tables {
				row = append(row, t.Rows[jb.cols[rel][idx]]...)
			}
			return row, nil
		}
	}
	type itemEval func(idx int) (table.Value, error)
	evals := make([]itemEval, len(items))
	for i, it := range items {
		switch x := it.Expr.(type) {
		case *sqlparse.Literal:
			v := x.Value
			evals[i] = func(int) (table.Value, error) { return v, nil }
		case *sqlparse.ColumnRef:
			bd, err := b.resolve(x)
			if err == nil && jb.cols[bd.rel] != nil {
				col := jb.cols[bd.rel]
				rows := b.tables[bd.rel].Rows
				ci := bd.col
				evals[i] = func(idx int) (table.Value, error) { return rows[col[idx]][ci], nil }
				continue
			}
			expr := it.Expr
			evals[i] = func(idx int) (table.Value, error) {
				return evalExpr(expr, evalEnv{b: b, batch: jb, idx: idx})
			}
		default:
			expr := it.Expr
			evals[i] = func(idx int) (table.Value, error) {
				return evalExpr(expr, evalEnv{b: b, batch: jb, idx: idx})
			}
		}
	}
	return func(idx int) (table.Row, error) {
		row := make(table.Row, len(evals))
		for i, ev := range evals {
			v, err := ev(idx)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	}
}

// batchLineageOf is lineageOf for a batch tuple.
func batchLineageOf(b *binder, jb *joinedBatch, idx int) []table.RowID {
	ids := make([]table.RowID, len(b.tables))
	for rel := range b.tables {
		ri := int32(-1)
		if c := jb.cols[rel]; c != nil {
			ri = c[idx]
		}
		ids[rel] = table.RowID{Table: strings.ToLower(b.tables[rel].Name), Row: int(ri)}
	}
	return ids
}

// projectColParallel is the worker-pool projection over a batch (no output
// budget active), merging per-morsel chunks in morsel order.
func projectColParallel(b *binder, schema table.Schema, jb *joinedBatch, emit func(int) (table.Row, error), trackLineage bool, g *guard, workers int) (*table.Table, [][]table.RowID, error) {
	n := jb.n
	nm := morselCount(n)
	rowChunks := make([][]table.Row, nm)
	var lineageChunks [][][]table.RowID
	if trackLineage {
		lineageChunks = make([][][]table.RowID, nm)
	}
	err := forEachMorsel(workers, n, func(m, lo, hi int) error {
		if err := g.poll(); err != nil {
			return err
		}
		rows := make([]table.Row, 0, hi-lo)
		var lineage [][]table.RowID
		if trackLineage {
			lineage = make([][]table.RowID, 0, hi-lo)
		}
		for idx := lo; idx < hi; idx++ {
			row, err := emit(idx)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			if trackLineage {
				lineage = append(lineage, batchLineageOf(b, jb, idx))
			}
		}
		rowChunks[m] = rows
		if trackLineage {
			lineageChunks[m] = lineage
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	out := table.New("result", schema)
	out.Rows = make([]table.Row, 0, n)
	var lineage [][]table.RowID
	if trackLineage {
		lineage = make([][]table.RowID, 0, n)
	}
	for m := range rowChunks {
		out.Rows = append(out.Rows, rowChunks[m]...)
		if trackLineage {
			lineage = append(lineage, lineageChunks[m]...)
		}
	}
	return out, lineage, nil
}

// finishCol applies DISTINCT, ORDER BY and LIMIT to a columnar SPJ result,
// mirroring finish with the joined batch standing in for []joinedRow.
func finishCol(b *binder, stmt *sqlparse.Select, res *Result, jb *joinedBatch) (*Result, error) {
	// rowIdx maps output rows to batch rows for ORDER BY expressions that
	// must evaluate against base columns.
	rowIdx := make([]int32, res.Table.NumRows())
	for i := range rowIdx {
		rowIdx[i] = int32(i)
	}

	if stmt.Distinct {
		seen := make(map[string]bool, res.Table.NumRows())
		keepRows := res.Table.Rows[:0]
		var keepLineage [][]table.RowID
		if res.Lineage != nil {
			keepLineage = res.Lineage[:0]
		}
		keepIdx := rowIdx[:0]
		var kb []byte
		for i, r := range res.Table.Rows {
			kb = r.AppendKey(kb[:0])
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
			keepRows = append(keepRows, r)
			if res.Lineage != nil {
				keepLineage = append(keepLineage, res.Lineage[i])
			}
			keepIdx = append(keepIdx, rowIdx[i])
		}
		res.Table.Rows = keepRows
		res.Lineage = keepLineage
		rowIdx = keepIdx
	}

	if len(stmt.OrderBy) > 0 {
		idx := make([]int, res.Table.NumRows())
		for i := range idx {
			idx[i] = i
		}
		keys := make([][]table.Value, len(idx))
		for i := range idx {
			ks := make([]table.Value, len(stmt.OrderBy))
			for oi, o := range stmt.OrderBy {
				v, err := orderKeyCol(b, res, jb, rowIdx, i, o.Expr)
				if err != nil {
					return nil, err
				}
				ks[oi] = v
			}
			keys[i] = ks
		}
		sortOrderedIdx(idx, keys, stmt.OrderBy)
		newRows := make([]table.Row, len(idx))
		var newLineage [][]table.RowID
		if res.Lineage != nil {
			newLineage = make([][]table.RowID, len(idx))
		}
		for i, j := range idx {
			newRows[i] = res.Table.Rows[j]
			if res.Lineage != nil {
				newLineage[i] = res.Lineage[j]
			}
		}
		res.Table.Rows = newRows
		res.Lineage = newLineage
	}

	if stmt.Limit >= 0 && res.Table.NumRows() > stmt.Limit {
		res.Table.Rows = res.Table.Rows[:stmt.Limit]
		if res.Lineage != nil {
			res.Lineage = res.Lineage[:stmt.Limit]
		}
	}
	return res, nil
}

// orderKeyCol computes an ORDER BY key for output row i of a columnar SPJ
// result: output-column match first, else evaluation over the batch tuple.
func orderKeyCol(b *binder, res *Result, jb *joinedBatch, rowIdx []int32, i int, e sqlparse.Expr) (table.Value, error) {
	name := e.String()
	if col := res.Table.ColumnIndex(name); col >= 0 {
		return res.Table.Rows[i][col], nil
	}
	if c, ok := e.(*sqlparse.ColumnRef); ok {
		if col := res.Table.ColumnIndex(c.Column); col >= 0 {
			return res.Table.Rows[i][col], nil
		}
	}
	return evalExpr(e, evalEnv{b: b, batch: jb, idx: int(rowIdx[i])})
}

// sortOrderedIdx stably sorts idx by precomputed ORDER BY keys (same
// comparison semantics as the row path's finish).
func sortOrderedIdx(idx []int, keys [][]table.Value, orderBy []sqlparse.OrderItem) {
	sort.SliceStable(idx, func(a, c int) bool {
		for oi, o := range orderBy {
			cmp := keys[idx[a]][oi].Compare(keys[idx[c]][oi])
			if cmp == 0 {
				continue
			}
			if o.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}
