package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// Morsel-driven parallelism (after the "morsel-driven" scheduling of HyPer):
// each operator partitions its input row range into fixed-size morsels, a
// small pool of workers pulls morsel indices from a shared atomic cursor, and
// per-morsel outputs are concatenated in morsel order — so the result is
// byte-identical to the serial plan regardless of worker count or scheduling.
const (
	// morselRows is the number of input rows per work unit. It matches
	// guardInterval so one cooperative guard poll per morsel preserves the
	// serial path's cancellation granularity.
	morselRows = 1024
	// parallelMinRows is the input size below which operators stay serial:
	// under a few morsels of work, goroutine hand-off costs more than it buys.
	parallelMinRows = 4096
)

// workers resolves Options.Parallelism to an effective worker count:
// 0 means all CPUs, anything below 1 means serial.
func (o Options) workers() int {
	if o.Parallelism == 0 {
		return runtime.NumCPU()
	}
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// morselCount returns the number of morsels covering n input rows.
func morselCount(n int) int {
	return (n + morselRows - 1) / morselRows
}

// forEachMorsel runs fn(m, lo, hi) over every morsel of n input rows using up
// to workers goroutines. The first error in *morsel order* is returned (not
// the first in wall-clock order), so error selection is as deterministic as
// the work that was attempted; later morsels are skipped once any morsel
// fails.
func forEachMorsel(workers, n int, fn func(m, lo, hi int) error) error {
	morsels := morselCount(n)
	if workers > morsels {
		workers = morsels
	}
	errs := make([]error, morsels)
	var cursor atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(cursor.Add(1)) - 1
				if m >= morsels || aborted.Load() {
					return
				}
				lo := m * morselRows
				hi := lo + morselRows
				if hi > n {
					hi = n
				}
				if err := fn(m, lo, hi); err != nil {
					errs[m] = err
					aborted.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// scanFilterParallel evaluates the per-relation filters over rel's rows with
// a worker pool, returning kept row indices in row order. Each worker polls
// the shared guard once per morsel (read-only, hence safe concurrently),
// matching the serial path's one-poll-per-guardInterval-rows cadence.
func scanFilterParallel(b *binder, rel int, filters []sqlparse.Expr, g *guard, workers int) ([]int32, error) {
	rows := b.tables[rel].Rows
	n := len(rows)
	nRel := len(b.tables)
	keeps := make([][]int32, morselCount(n))
	err := forEachMorsel(workers, n, func(m, lo, hi int) error {
		if err := g.poll(); err != nil {
			return err
		}
		probe := make(joinedRow, nRel)
		for i := range probe {
			probe[i] = -1
		}
		keep := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			probe[rel] = int32(i)
			ok := true
			for _, f := range filters {
				v, err := evalExpr(f, evalEnv{b: b, row: probe})
				if err != nil {
					return err
				}
				if v.IsNull() || !truthy(v) {
					ok = false
					break
				}
			}
			if ok {
				keep = append(keep, int32(i))
			}
		}
		keeps[m] = keep
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, k := range keeps {
		total += len(k)
	}
	out := make([]int32, 0, total)
	for _, k := range keeps {
		out = append(out, k...)
	}
	return out, nil
}

// probeParallel runs the probe phase of a hash join over the current
// intermediate rows with a worker pool. The build table is shared read-only;
// per-morsel output slices are concatenated in morsel order so the output is
// identical to the serial probe. Intermediate-row accounting is folded into a
// shared atomic counter: the budget trips if and only if the total emitted
// rows exceed the limit, exactly as in the serial path.
func probeParallel(b *binder, current []joinedRow, rel int, pairs []joinKeyPair, build map[string]*[]int32, opts Options, g *guard, workers int) ([]joinedRow, error) {
	n := len(current)
	outs := make([][]joinedRow, morselCount(n))
	var produced atomic.Int64
	limit := int64(opts.MaxIntermediateRows)
	err := forEachMorsel(workers, n, func(m, lo, hi int) error {
		if err := g.poll(); err != nil {
			return err
		}
		var kb []byte
		out := make([]joinedRow, 0, hi-lo)
		since := 0
		for _, jr := range current[lo:hi] {
			kb = kb[:0]
			null := false
			for _, kp := range pairs {
				ri := jr[kp.boundBind.rel]
				v := b.tables[kp.boundBind.rel].Rows[ri][kp.boundBind.col]
				if v.IsNull() {
					null = true
					break
				}
				kb = v.AppendKey(kb)
				kb = append(kb, 0x1e)
			}
			if null {
				continue
			}
			bucket := build[string(kb)]
			if bucket == nil {
				continue
			}
			for _, ri := range *bucket {
				if since++; since >= guardInterval {
					since = 0
					if err := g.poll(); err != nil {
						return err
					}
				}
				nr := make(joinedRow, len(jr))
				copy(nr, jr)
				nr[rel] = ri
				out = append(out, nr)
				if produced.Add(1) > limit {
					return fmt.Errorf("%w: join intermediate exceeds limit %d rows", ErrRowBudget, opts.MaxIntermediateRows)
				}
			}
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	merged := make([]joinedRow, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged, nil
}

// projectParallel evaluates the SELECT list over joined rows with a worker
// pool, appending per-morsel row (and lineage) slices in morsel order. It is
// only used when no output-row budget is active: a budget trip must return
// exactly the rows produced before it, which is inherently serial.
func projectParallel(b *binder, stmt *sqlparse.Select, items []sqlparse.SelectItem, schema table.Schema, joined []joinedRow, trackLineage bool, g *guard, workers int) (*table.Table, [][]table.RowID, error) {
	n := len(joined)
	nm := morselCount(n)
	rowChunks := make([][]table.Row, nm)
	var lineageChunks [][][]table.RowID
	if trackLineage {
		lineageChunks = make([][][]table.RowID, nm)
	}
	err := forEachMorsel(workers, n, func(m, lo, hi int) error {
		if err := g.poll(); err != nil {
			return err
		}
		rows := make([]table.Row, 0, hi-lo)
		var lineage [][]table.RowID
		if trackLineage {
			lineage = make([][]table.RowID, 0, hi-lo)
		}
		for _, jr := range joined[lo:hi] {
			row, err := projectRow(b, stmt, items, schema, jr)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			if trackLineage {
				lineage = append(lineage, lineageOf(b, jr))
			}
		}
		rowChunks[m] = rows
		if trackLineage {
			lineageChunks[m] = lineage
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	out := table.New("result", schema)
	out.Rows = make([]table.Row, 0, n)
	var lineage [][]table.RowID
	if trackLineage {
		lineage = make([][]table.RowID, 0, n)
	}
	for m := range rowChunks {
		out.Rows = append(out.Rows, rowChunks[m]...)
		if trackLineage {
			lineage = append(lineage, lineageChunks[m]...)
		}
	}
	return out, lineage, nil
}
