package engine

import (
	"testing"

	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
)

// TestExecuteRecordsMetrics verifies that query execution with observability
// enabled records per-query, per-shape, per-operator and per-phase metrics,
// and that nothing is recorded while disabled.
func TestExecuteRecordsMetrics(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	db := testDB()
	stmt := sqlparse.MustParse("SELECT m.title FROM movies m JOIN credits c ON m.id = c.movie_id")

	obs.SetEnabled(false)
	obs.Default().Reset()
	if _, err := ExecuteWith(db, stmt, Options{}); err != nil {
		t.Fatal(err)
	}
	if n := obs.Default().Snapshot().Counters["engine/queries"]; n != 0 {
		t.Fatalf("disabled execution recorded %d queries", n)
	}

	obs.SetEnabled(true)
	if _, err := ExecuteWith(db, stmt, Options{}); err != nil {
		t.Fatal(err)
	}
	snap := obs.Default().Snapshot()
	if snap.Counters["engine/queries"] != 1 {
		t.Fatalf("engine/queries = %d, want 1", snap.Counters["engine/queries"])
	}
	if snap.Counters["engine/op/scan"] != 2 || snap.Counters["engine/op/hash_join"] != 1 {
		t.Fatalf("operator counters wrong: %+v", snap.Counters)
	}
	if h := snap.Histograms["engine/query/seconds/scan2-hash1"]; h.Count != 1 || h.P50 <= 0 {
		t.Fatalf("per-shape histogram wrong: %+v", h)
	}
	for _, phase := range []string{"plan", "join", "project", "finish"} {
		if h := snap.Histograms["engine/phase/"+phase+"/seconds"]; h.Count != 1 {
			t.Fatalf("phase %q histogram count = %d, want 1", phase, h.Count)
		}
	}

	// Errors are counted too.
	if _, err := ExecuteWith(db, sqlparse.MustParse("SELECT nope FROM movies"), Options{}); err == nil {
		t.Fatal("expected binding error")
	}
	snap = obs.Default().Snapshot()
	if snap.Counters["engine/errors"] != 1 || snap.Counters["engine/queries"] != 2 {
		t.Fatalf("error accounting wrong: %+v", snap.Counters)
	}
	obs.Default().Reset()
}
