package engine

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Typed guard errors. Callers match them with errors.Is; GuardKind extracts
// the guard name for degradation bookkeeping.
var (
	// ErrDeadline reports that the query's wall-clock deadline expired.
	ErrDeadline = errors.New("engine: query deadline exceeded")
	// ErrRowBudget reports that a per-query row budget (output or
	// intermediate) was exceeded.
	ErrRowBudget = errors.New("engine: row budget exceeded")
	// ErrCanceled reports cooperative cancellation via the query context.
	ErrCanceled = errors.New("engine: query canceled")
)

// GuardKind names the guard behind err: "deadline", "rows", "canceled", or ""
// when err is not a guard error.
func GuardKind(err error) string {
	switch {
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrRowBudget):
		return "rows"
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return ""
	}
}

// guardInterval is how many processed rows pass between cooperative
// cancellation/deadline checks. Row counting itself is exact; only the
// clock/context polls are amortized.
const guardInterval = 1024

// guard enforces per-query resource limits: cooperative cancellation,
// wall-clock deadline, and output/intermediate row budgets. A nil *guard is
// valid and disables all checks, so unguarded execution (ExecuteWith without
// a context or budgets) pays only a nil comparison per row.
type guard struct {
	ctx         context.Context
	deadline    time.Time
	hasDeadline bool
	maxOutput   int // 0 = unlimited
	sinceCheck  int
	output      int
}

// newGuard returns a guard for ctx and opts, or nil when nothing needs
// enforcing (background-like context, no deadline, no output budget).
func newGuard(ctx context.Context, opts Options) *guard {
	var g *guard
	if ctx != nil && ctx != context.Background() {
		g = &guard{ctx: ctx}
		if d, ok := ctx.Deadline(); ok {
			g.deadline, g.hasDeadline = d, true
		}
	}
	if opts.MaxOutputRows > 0 {
		if g == nil {
			g = &guard{}
		}
		g.maxOutput = opts.MaxOutputRows
	}
	return g
}

// tick accounts for n processed rows and, every guardInterval rows, polls the
// context and deadline. It is the per-row hook of every operator loop.
func (g *guard) tick(n int) error {
	if g == nil {
		return nil
	}
	g.sinceCheck += n
	if g.sinceCheck < guardInterval {
		return nil
	}
	g.sinceCheck = 0
	return g.poll()
}

// poll checks context and deadline immediately (used at operator boundaries,
// where a prompt check is worth the clock read).
func (g *guard) poll() error {
	if g == nil {
		return nil
	}
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("%w: %v", ErrDeadline, err)
			}
			return fmt.Errorf("%w: %v", ErrCanceled, err)
		}
	}
	if g.hasDeadline && time.Now().After(g.deadline) {
		return ErrDeadline
	}
	return nil
}

// out accounts for n emitted output rows against the output budget.
func (g *guard) out(n int) error {
	if g == nil || g.maxOutput <= 0 {
		return nil
	}
	g.output += n
	if g.output > g.maxOutput {
		return fmt.Errorf("%w: output exceeds %d rows", ErrRowBudget, g.maxOutput)
	}
	return nil
}
