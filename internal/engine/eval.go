// Package engine implements the query planner and executor for the SQL
// subset parsed by internal/sqlparse: filtered scans, left-deep hash joins
// with cartesian fallback, projection, hash aggregation, DISTINCT, ORDER BY
// and LIMIT. The executor tracks lineage — for every SPJ result row, the base
// table rows that produced it — which the ASQP-RL preprocessing pipeline uses
// to build the RL action space.
package engine

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// binding maps a column reference to (relation index, column index).
type binding struct {
	rel int
	col int
}

// binder resolves column references against the relations in scope.
type binder struct {
	db       *table.Database
	refs     []sqlparse.TableRef // FROM entries then JOIN entries
	tables   []*table.Table      // resolved tables, aligned with refs
	bindings map[*sqlparse.ColumnRef]binding
}

func newBinder(db *table.Database, stmt *sqlparse.Select) (*binder, error) {
	b := &binder{db: db, bindings: make(map[*sqlparse.ColumnRef]binding)}
	add := func(ref sqlparse.TableRef) error {
		t := db.Table(ref.Table)
		if t == nil {
			return fmt.Errorf("engine: unknown table %q", ref.Table)
		}
		for _, existing := range b.refs {
			if strings.EqualFold(existing.Name(), ref.Name()) {
				return fmt.Errorf("engine: duplicate relation name %q (alias it)", ref.Name())
			}
		}
		b.refs = append(b.refs, ref)
		b.tables = append(b.tables, t)
		return nil
	}
	for _, ref := range stmt.From {
		if err := add(ref); err != nil {
			return nil, err
		}
	}
	for _, j := range stmt.Joins {
		if err := add(j.Ref); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// resolve binds a single column reference.
func (b *binder) resolve(c *sqlparse.ColumnRef) (binding, error) {
	if bd, ok := b.bindings[c]; ok {
		return bd, nil
	}
	var found []binding
	for i, ref := range b.refs {
		if c.Table != "" && !strings.EqualFold(ref.Name(), c.Table) {
			continue
		}
		if col := b.tables[i].ColumnIndex(c.Column); col >= 0 {
			found = append(found, binding{rel: i, col: col})
		}
	}
	switch len(found) {
	case 0:
		return binding{}, fmt.Errorf("engine: column %q not found", c.String())
	case 1:
		b.bindings[c] = found[0]
		return found[0], nil
	default:
		return binding{}, fmt.Errorf("engine: column %q is ambiguous", c.String())
	}
}

// bindExpr resolves every column reference under e.
func (b *binder) bindExpr(e sqlparse.Expr) error {
	var firstErr error
	sqlparse.Walk(e, func(n sqlparse.Expr) {
		if c, ok := n.(*sqlparse.ColumnRef); ok {
			if _, err := b.resolve(c); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

// joinedRow is an intermediate tuple during join processing: one row index
// per relation, -1 for relations not yet joined.
type joinedRow []int32

// evalEnv supplies column values for expression evaluation over either a
// joined row (row engine) or one tuple of a joinedBatch (columnar engine,
// batch + idx set). Exactly one of row/batch is set; with neither, every
// column reads as NULL (used for constant-only evaluation).
type evalEnv struct {
	b     *binder
	row   joinedRow
	batch *joinedBatch
	idx   int
}

func (e evalEnv) value(bd binding) table.Value {
	var ri int32 = -1
	if e.batch != nil {
		if c := e.batch.cols[bd.rel]; c != nil {
			ri = c[e.idx]
		}
	} else if e.row != nil {
		ri = e.row[bd.rel]
	}
	if ri < 0 {
		return table.Null
	}
	return e.b.tables[bd.rel].Rows[ri][bd.col]
}

// likeCacheCap bounds the LIKE-pattern memo. Workloads reuse a small set of
// patterns across millions of row evaluations, but patterns are user input,
// so the memo must not grow without bound; on overflow the oldest entry is
// evicted (FIFO), which is enough because live queries re-insert their
// pattern on the next row at worst.
const likeCacheCap = 256

var (
	likeMu    sync.RWMutex
	likeCache = make(map[string]*regexp.Regexp, likeCacheCap)
	likeOrder []string // insertion order, for FIFO eviction
)

func likeRegexp(pattern string) (*regexp.Regexp, error) {
	likeMu.RLock()
	re, ok := likeCache[pattern]
	likeMu.RUnlock()
	if ok {
		return re, nil
	}
	var b strings.Builder
	b.WriteString("(?is)^")
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	re, err := regexp.Compile(b.String())
	if err != nil {
		return nil, fmt.Errorf("engine: bad LIKE pattern %q: %w", pattern, err)
	}
	likeMu.Lock()
	if _, exists := likeCache[pattern]; !exists {
		for len(likeCache) >= likeCacheCap {
			oldest := likeOrder[0]
			likeOrder = likeOrder[1:]
			delete(likeCache, oldest)
		}
		likeCache[pattern] = re
		likeOrder = append(likeOrder, pattern)
	}
	likeMu.Unlock()
	return re, nil
}

// evalExpr evaluates e over env. Aggregate calls are not valid here; they are
// handled by the aggregation operator.
func evalExpr(e sqlparse.Expr, env evalEnv) (table.Value, error) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return x.Value, nil
	case *sqlparse.ColumnRef:
		bd, err := env.b.resolve(x)
		if err != nil {
			return table.Null, err
		}
		return env.value(bd), nil
	case *sqlparse.Unary:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return table.Null, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return table.Null, nil
			}
			return table.NewBool(!truthy(v)), nil
		case "-":
			switch v.Kind {
			case table.KindInt:
				return table.NewInt(-v.Int), nil
			case table.KindFloat:
				return table.NewFloat(-v.Float), nil
			case table.KindNull:
				return table.Null, nil
			}
			return table.Null, fmt.Errorf("engine: cannot negate %v", v.Kind)
		}
		return table.Null, fmt.Errorf("engine: unknown unary op %q", x.Op)
	case *sqlparse.Binary:
		return evalBinary(x, env)
	case *sqlparse.In:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return table.Null, err
		}
		if v.IsNull() {
			return table.Null, nil
		}
		match := false
		for _, item := range x.List {
			iv, err := evalExpr(item, env)
			if err != nil {
				return table.Null, err
			}
			if v.Equal(iv) {
				match = true
				break
			}
		}
		return table.NewBool(match != x.Not), nil
	case *sqlparse.Between:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return table.Null, err
		}
		lo, err := evalExpr(x.Lo, env)
		if err != nil {
			return table.Null, err
		}
		hi, err := evalExpr(x.Hi, env)
		if err != nil {
			return table.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return table.Null, nil
		}
		in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		return table.NewBool(in != x.Not), nil
	case *sqlparse.Like:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return table.Null, err
		}
		if v.IsNull() {
			return table.Null, nil
		}
		re, err := likeRegexp(x.Pattern)
		if err != nil {
			return table.Null, err
		}
		return table.NewBool(re.MatchString(v.String()) != x.Not), nil
	case *sqlparse.IsNull:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return table.Null, err
		}
		return table.NewBool(v.IsNull() != x.Not), nil
	case *sqlparse.Call:
		return table.Null, fmt.Errorf("engine: aggregate %s not allowed in this context", x.Name)
	}
	return table.Null, fmt.Errorf("engine: unsupported expression %T", e)
}

func evalBinary(x *sqlparse.Binary, env evalEnv) (table.Value, error) {
	switch x.Op {
	case "AND":
		l, err := evalExpr(x.Left, env)
		if err != nil {
			return table.Null, err
		}
		if !l.IsNull() && !truthy(l) {
			return table.NewBool(false), nil
		}
		r, err := evalExpr(x.Right, env)
		if err != nil {
			return table.Null, err
		}
		if !r.IsNull() && !truthy(r) {
			return table.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return table.Null, nil
		}
		return table.NewBool(true), nil
	case "OR":
		l, err := evalExpr(x.Left, env)
		if err != nil {
			return table.Null, err
		}
		if !l.IsNull() && truthy(l) {
			return table.NewBool(true), nil
		}
		r, err := evalExpr(x.Right, env)
		if err != nil {
			return table.Null, err
		}
		if !r.IsNull() && truthy(r) {
			return table.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return table.Null, nil
		}
		return table.NewBool(false), nil
	}
	l, err := evalExpr(x.Left, env)
	if err != nil {
		return table.Null, err
	}
	r, err := evalExpr(x.Right, env)
	if err != nil {
		return table.Null, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return table.Null, nil
		}
		cmp := l.Compare(r)
		var out bool
		switch x.Op {
		case "=":
			out = l.Equal(r)
		case "<>":
			out = !l.Equal(r)
		case "<":
			out = cmp < 0
		case "<=":
			out = cmp <= 0
		case ">":
			out = cmp > 0
		case ">=":
			out = cmp >= 0
		}
		return table.NewBool(out), nil
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return table.Null, nil
		}
		if !l.IsNumeric() || !r.IsNumeric() {
			return table.Null, fmt.Errorf("engine: arithmetic %q on non-numeric values", x.Op)
		}
		if l.Kind == table.KindInt && r.Kind == table.KindInt && x.Op != "/" {
			a, b := l.Int, r.Int
			switch x.Op {
			case "+":
				return table.NewInt(a + b), nil
			case "-":
				return table.NewInt(a - b), nil
			case "*":
				return table.NewInt(a * b), nil
			case "%":
				if b == 0 {
					return table.Null, nil
				}
				return table.NewInt(a % b), nil
			}
		}
		a, b := l.AsFloat(), r.AsFloat()
		switch x.Op {
		case "+":
			return table.NewFloat(a + b), nil
		case "-":
			return table.NewFloat(a - b), nil
		case "*":
			return table.NewFloat(a * b), nil
		case "/":
			if b == 0 {
				return table.Null, nil
			}
			return table.NewFloat(a / b), nil
		case "%":
			if b == 0 {
				return table.Null, nil
			}
			return table.NewFloat(float64(int64(a) % int64(b))), nil
		}
	}
	return table.Null, fmt.Errorf("engine: unknown binary op %q", x.Op)
}

// truthy reports whether a non-NULL value counts as true in a predicate
// context.
func truthy(v table.Value) bool {
	switch v.Kind {
	case table.KindBool:
		return v.Bool
	case table.KindInt:
		return v.Int != 0
	case table.KindFloat:
		return v.Float != 0
	case table.KindString:
		return v.Str != ""
	default:
		return false
	}
}
