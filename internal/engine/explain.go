package engine

import (
	"fmt"
	"strings"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// Explain returns a human-readable description of the physical plan the
// executor will use for stmt: per-relation scans with pushed-down filters,
// the join order with join kinds (hash vs cross), residual predicates, and
// the finishing operators. It performs binding and predicate classification
// but does not execute anything.
func Explain(db *table.Database, stmt *sqlparse.Select) (string, error) {
	b, err := newBinder(db, stmt)
	if err != nil {
		return "", err
	}
	for _, it := range stmt.Items {
		if err := b.bindExpr(it.Expr); err != nil {
			return "", err
		}
	}
	for _, j := range stmt.Joins {
		if err := b.bindExpr(j.On); err != nil {
			return "", err
		}
	}
	if err := b.bindExpr(stmt.Where); err != nil {
		return "", err
	}
	preds, err := classify(b, stmt)
	if err != nil {
		return "", err
	}

	var out strings.Builder
	fmt.Fprintf(&out, "plan for: %s\n", stmt)

	// Scans.
	for rel := range b.tables {
		var filters []string
		for _, p := range preds {
			if len(p.rels) == 1 && p.rels[0] == rel {
				filters = append(filters, p.expr.String())
			}
			if len(p.rels) == 0 && rel == 0 {
				filters = append(filters, p.expr.String())
			}
		}
		fmt.Fprintf(&out, "  scan %s (%d rows)", b.refs[rel].Name(), b.tables[rel].NumRows())
		if len(filters) > 0 {
			fmt.Fprintf(&out, " filter: %s", strings.Join(filters, " AND "))
		}
		out.WriteByte('\n')
	}

	// Join order (left-deep, FROM order).
	bound := map[int]bool{0: true}
	for rel := 1; rel < len(b.tables); rel++ {
		var keys []string
		for _, p := range preds {
			if !p.isEquiJoin {
				continue
			}
			a, c := p.leftBind.rel, p.rightBind.rel
			if (a == rel && bound[c]) || (c == rel && bound[a]) {
				keys = append(keys, p.expr.String())
			}
		}
		if len(keys) > 0 {
			fmt.Fprintf(&out, "  hash join %s on %s\n", b.refs[rel].Name(), strings.Join(keys, " AND "))
		} else {
			fmt.Fprintf(&out, "  cross join %s\n", b.refs[rel].Name())
		}
		bound[rel] = true
		for _, p := range preds {
			if p.isEquiJoin || len(p.rels) < 2 || p.rels[len(p.rels)-1] != rel {
				continue
			}
			fmt.Fprintf(&out, "  residual filter: %s\n", p.expr.String())
		}
	}

	// Finishing operators.
	if stmt.HasAggregates() {
		if len(stmt.GroupBy) > 0 {
			groups := make([]string, len(stmt.GroupBy))
			for i, g := range stmt.GroupBy {
				groups[i] = g.String()
			}
			fmt.Fprintf(&out, "  hash aggregate by %s\n", strings.Join(groups, ", "))
		} else {
			out.WriteString("  global aggregate\n")
		}
		if stmt.Having != nil {
			fmt.Fprintf(&out, "  having: %s\n", stmt.Having)
		}
	} else {
		out.WriteString("  project\n")
	}
	if stmt.Distinct {
		out.WriteString("  distinct\n")
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]string, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			keys[i] = o.String()
		}
		fmt.Fprintf(&out, "  sort by %s\n", strings.Join(keys, ", "))
	}
	if stmt.Limit >= 0 {
		fmt.Fprintf(&out, "  limit %d\n", stmt.Limit)
	}
	return out.String(), nil
}

// PlanShape returns a compact key describing the physical plan the executor
// will use for stmt — scan/join/residual operator counts plus finishing
// operator flags, e.g. "scan3-hash2-res1+agg+sort+limit". The engine's
// per-query metrics are keyed by it, so queries with the same plan skeleton
// aggregate into one histogram regardless of their literals.
func PlanShape(db *table.Database, stmt *sqlparse.Select) (string, error) {
	b, err := newBinder(db, stmt)
	if err != nil {
		return "", err
	}
	preds, err := classify(b, stmt)
	if err != nil {
		return "", err
	}
	return planShape(b, preds, stmt), nil
}

// planShape is PlanShape over an already-bound statement.
func planShape(b *binder, preds []predClass, stmt *sqlparse.Select) string {
	counts := planOpCounts(b, preds)
	var out strings.Builder
	fmt.Fprintf(&out, "scan%d", len(b.tables))
	if counts.hashJoins > 0 {
		fmt.Fprintf(&out, "-hash%d", counts.hashJoins)
	}
	if counts.crossJoins > 0 {
		fmt.Fprintf(&out, "-cross%d", counts.crossJoins)
	}
	if counts.residuals > 0 {
		fmt.Fprintf(&out, "-res%d", counts.residuals)
	}
	if stmt.HasAggregates() {
		out.WriteString("+agg")
	}
	if stmt.Distinct {
		out.WriteString("+distinct")
	}
	if len(stmt.OrderBy) > 0 {
		out.WriteString("+sort")
	}
	if stmt.Limit >= 0 {
		out.WriteString("+limit")
	}
	return out.String()
}

// opCounts tallies the join-pipeline operators of a classified plan.
type opCounts struct {
	hashJoins  int
	crossJoins int
	residuals  int
}

// planOpCounts walks the left-deep join order exactly as runJoins does and
// counts the operator kinds it will execute.
func planOpCounts(b *binder, preds []predClass) opCounts {
	var c opCounts
	bound := map[int]bool{0: true}
	for rel := 1; rel < len(b.tables); rel++ {
		hash := false
		for _, p := range preds {
			if !p.isEquiJoin {
				continue
			}
			l, r := p.leftBind.rel, p.rightBind.rel
			if (l == rel && bound[r]) || (r == rel && bound[l]) {
				hash = true
				break
			}
		}
		if hash {
			c.hashJoins++
		} else {
			c.crossJoins++
		}
		bound[rel] = true
		for _, p := range preds {
			if p.isEquiJoin || len(p.rels) < 2 || p.rels[len(p.rels)-1] != rel {
				continue
			}
			c.residuals++
		}
	}
	return c
}
