package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"asqprl/internal/faults"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// This file holds the seeded differential fuzz harness for the columnar
// execution core: every generated statement is executed by the legacy
// row-at-a-time engine (the reference) and by the columnar engine at
// parallelism 1 and 8, and the three runs must agree byte for byte — same
// result fingerprint (schema, row keys, lineage) on success, same error
// string and guard kind on failure, and identical partial results when an
// output budget trips mid-projection. The generated data deliberately covers
// the hard parity corners: NULLs everywhere, NaN and integral floats (which
// Value.Compare and Value.Key treat specially), dictionary strings,
// kind-mismatched (Mixed) columns that force the row fallback, and tables
// large enough to engage the parallel morsel paths.

// fuzzVocab is the string vocabulary; small so dictionary codes repeat.
var fuzzVocab = []string{"drama", "comedy", "noir", "sci-fi", "doc"}

// fuzzDB builds a two-table database from rng. About one run in six is big
// enough (> parallelMinRows) to exercise the parallel scan/probe/project
// paths; the rest stay small so many statements run per fuzz cycle.
func fuzzDB(rng *rand.Rand) *table.Database {
	nA := 30 + rng.Intn(50)
	if rng.Intn(6) == 0 {
		nA = parallelMinRows + 500 + rng.Intn(1000)
	}
	mixed := rng.Intn(4) == 0 // poison fa.mx with a string cell → Mixed column
	fa := table.New("fa", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "num", Kind: table.KindInt},
		{Name: "val", Kind: table.KindFloat},
		{Name: "cat", Kind: table.KindString},
		{Name: "flag", Kind: table.KindBool},
		{Name: "mx", Kind: table.KindInt},
	})
	for i := 0; i < nA; i++ {
		num := table.NewInt(int64(rng.Intn(20) - 5))
		if rng.Intn(10) == 0 {
			num = table.Null
		}
		var val table.Value
		switch rng.Intn(8) {
		case 0:
			val = table.Null
		case 1:
			val = table.NewFloat(math.NaN())
		case 2:
			val = table.NewFloat(float64(rng.Intn(8))) // integral float
		default:
			val = table.NewFloat(float64(rng.Intn(16)) - 7.5)
		}
		cat := table.NewString(fuzzVocab[rng.Intn(len(fuzzVocab))])
		if rng.Intn(8) == 0 {
			cat = table.Null
		}
		flag := table.NewBool(rng.Intn(2) == 0)
		if rng.Intn(8) == 0 {
			flag = table.Null
		}
		mx := table.NewInt(int64(rng.Intn(10)))
		if mixed && rng.Intn(16) == 0 {
			mx = table.NewString("oops")
		}
		fa.AppendRow(table.Row{table.NewInt(int64(i)), num, val, cat, flag, mx})
	}
	nB := 20 + rng.Intn(40)
	if nA > parallelMinRows {
		nB = parallelMinRows + rng.Intn(500)
	}
	fb := table.New("fb", table.Schema{
		{Name: "fa_id", Kind: table.KindInt},
		{Name: "cat", Kind: table.KindString},
		{Name: "w", Kind: table.KindInt},
	})
	for i := 0; i < nB; i++ {
		w := table.NewInt(int64(rng.Intn(8)))
		if rng.Intn(12) == 0 {
			w = table.Null
		}
		fb.AppendRow(table.Row{
			table.NewInt(int64(rng.Intn(nA + 5))), // some dangling keys
			table.NewString(fuzzVocab[rng.Intn(len(fuzzVocab))]),
			w,
		})
	}
	db := table.NewDatabase()
	db.Add(fa)
	db.Add(fb)
	return db
}

func fuzzNot(rng *rand.Rand) string {
	if rng.Intn(3) == 0 {
		return "NOT "
	}
	return ""
}

// fuzzPred generates a predicate over fa's columns, qualified with prefix p
// ("" or "a."). It covers every kernel family: ordered comparisons on ints
// and floats (the NaN parity corner), BETWEEN, IN, LIKE, IS [NOT] NULL,
// truthy bool columns, Mixed-column comparisons (row fallback), and
// NOT/AND/OR composition.
func fuzzPred(rng *rand.Rand, p string, depth int) string {
	if depth > 0 && rng.Intn(3) == 0 {
		op := " AND "
		if rng.Intn(2) == 0 {
			op = " OR "
		}
		s := "(" + fuzzPred(rng, p, depth-1) + op + fuzzPred(rng, p, depth-1) + ")"
		if rng.Intn(4) == 0 {
			s = "NOT " + s
		}
		return s
	}
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	op := ops[rng.Intn(len(ops))]
	switch rng.Intn(9) {
	case 0:
		return fmt.Sprintf("%snum %s %d", p, op, rng.Intn(20)-5)
	case 1:
		lits := []string{"2.5", "-0.5", "4", "7.25", "0"}
		return fmt.Sprintf("%sval %s %s", p, op, lits[rng.Intn(len(lits))])
	case 2:
		lo := rng.Intn(10) - 2
		return fmt.Sprintf("%snum %sBETWEEN %d AND %d", p, fuzzNot(rng), lo, lo+rng.Intn(8))
	case 3:
		return fmt.Sprintf("%sval %sBETWEEN -1 AND %d", p, fuzzNot(rng), rng.Intn(8))
	case 4:
		return fmt.Sprintf("%scat %sIN ('drama', 'noir')", p, fuzzNot(rng))
	case 5:
		pats := []string{"'d%'", "'%a'", "'_o%'", "'comedy'"}
		return fmt.Sprintf("%scat %sLIKE %s", p, fuzzNot(rng), pats[rng.Intn(len(pats))])
	case 6:
		cols := []string{"num", "val", "cat", "flag"}
		return fmt.Sprintf("%s%s IS %sNULL", p, cols[rng.Intn(len(cols))], fuzzNot(rng))
	case 7:
		if rng.Intn(2) == 0 {
			return p + "flag"
		}
		return "NOT " + p + "flag"
	default:
		return fmt.Sprintf("%smx %s %d", p, op, rng.Intn(10))
	}
}

// fuzzSQL generates one statement: single-table SPJ (with DISTINCT, ORDER BY,
// LIMIT), two- and three-way joins on int, string, and float-vs-int keys, and
// grouped aggregates with HAVING.
func fuzzSQL(rng *rand.Rand) string {
	switch rng.Intn(5) {
	case 0: // single-table select-project
		sel := "*"
		switch rng.Intn(3) {
		case 1:
			sel = "id, cat, val"
		case 2:
			sel = "num, flag"
		}
		distinct := ""
		if rng.Intn(4) == 0 {
			distinct = "DISTINCT "
		}
		q := "SELECT " + distinct + sel + " FROM fa"
		if rng.Intn(5) > 0 {
			q += " WHERE " + fuzzPred(rng, "", 2)
		}
		if rng.Intn(3) == 0 {
			cols := []string{"id", "num", "val", "cat"}
			q += " ORDER BY " + cols[rng.Intn(len(cols))]
			if rng.Intn(2) == 0 {
				q += " DESC"
			}
		}
		if rng.Intn(3) == 0 {
			q += fmt.Sprintf(" LIMIT %d", rng.Intn(25))
		}
		return q
	case 1: // two-way join on int, string, or float-vs-int keys
		on := "a.id = b.fa_id"
		switch rng.Intn(3) {
		case 1:
			on = "a.cat = b.cat"
		case 2:
			on = "a.val = b.w" // float build side: integral-float/NaN keys
		}
		q := "SELECT a.id, a.cat, b.w FROM fa a JOIN fb b ON " + on
		if rng.Intn(2) == 0 {
			q += " WHERE " + fuzzPred(rng, "a.", 1)
		}
		if rng.Intn(3) == 0 {
			q += " ORDER BY a.id LIMIT 30"
		}
		return q
	case 2: // composite join key
		q := "SELECT a.id, b.w FROM fa a JOIN fb b ON a.id = b.fa_id AND a.cat = b.cat"
		if rng.Intn(2) == 0 {
			q += " WHERE " + fuzzPred(rng, "a.", 1)
		}
		return q
	case 3: // grouped aggregate
		q := "SELECT cat, COUNT(*), SUM(num), AVG(val), MIN(val) FROM fa"
		if rng.Intn(2) == 0 {
			q += " WHERE " + fuzzPred(rng, "", 1)
		}
		q += " GROUP BY cat"
		if rng.Intn(3) == 0 {
			q += " HAVING COUNT(*) > 1"
		}
		return q
	default: // three-way join
		q := "SELECT a.id, c.w FROM fa a JOIN fb b ON a.id = b.fa_id JOIN fb c ON b.w = c.w"
		if rng.Intn(2) == 0 {
			q += " WHERE " + fuzzPred(rng, "a.", 1)
		}
		return q
	}
}

// fuzzRun executes stmt under one engine configuration. faultPoint, when
// non-empty, arms a fresh deterministic error injection (identical across the
// compared runs — the schedules carry per-run hit counters, so each run gets
// its own).
func fuzzRun(ctx context.Context, db *table.Database, stmt *sqlparse.Select, opts Options, faultPoint string, faultAfter int) (*Result, error) {
	if faultPoint != "" {
		faults.Enable(faults.NewSchedule(1, faults.Injection{
			Point: faultPoint,
			Kind:  faults.KindError,
			After: faultAfter,
		}))
		defer faults.Disable()
	}
	return ExecuteWithContext(ctx, db, stmt, opts)
}

// fuzzCompare asserts run B matches the reference run A exactly: same
// success/failure, same error string and guard kind, same (possibly partial)
// result fingerprint.
func fuzzCompare(t *testing.T, sql, label string, resA *Result, errA error, resB *Result, errB error) {
	t.Helper()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("%s: error mismatch for %q\nreference: %v\n%s: %v", label, sql, errA, label, errB)
	}
	if errA != nil {
		if errA.Error() != errB.Error() || GuardKind(errA) != GuardKind(errB) {
			t.Fatalf("%s: error diverges for %q\nreference: %v (guard %q)\n%s: %v (guard %q)",
				label, sql, errA, GuardKind(errA), label, errB, GuardKind(errB))
		}
	}
	if (resA == nil) != (resB == nil) {
		t.Fatalf("%s: partial-result presence mismatch for %q (reference nil=%v, got nil=%v, err=%v)",
			label, sql, resA == nil, resB == nil, errA)
	}
	if resA != nil {
		if fa, fb := resultFingerprint(resA), resultFingerprint(resB); fa != fb {
			t.Fatalf("%s: result diverges for %q\nreference:\n%.600s\n%s:\n%.600s", label, sql, fa, label, fb)
		}
	}
}

// FuzzRowVsColumnar is the differential harness: seed → random database +
// statements → row engine vs columnar engine at parallelism 1 and 8, plus
// CountContext, under normal execution, pre-canceled contexts, output and
// intermediate row budgets, and injected operator faults.
func FuzzRowVsColumnar(f *testing.F) {
	for s := int64(0); s < 24; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		db := fuzzDB(rng)
		for si := 0; si < 6; si++ {
			sql := fuzzSQL(rng)
			stmt, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatalf("generator produced unparsable SQL %q: %v", sql, err)
			}
			ctx := context.Background()
			// Always bound join intermediates: low-cardinality join keys on
			// the big-table cases can fan out to millions of rows, and a
			// budget trip is itself a compared outcome (same error string on
			// every path), so capping keeps the harness fast without losing
			// coverage.
			base := Options{TrackLineage: true, MaxIntermediateRows: 100_000}
			faultPoint, faultAfter := "", 0
			switch rng.Intn(8) {
			case 0: // cooperative cancellation: already-canceled context
				c, cancel := context.WithCancel(context.Background())
				cancel()
				ctx = c
			case 1: // output row budget → partial results + ErrRowBudget
				base.MaxOutputRows = 1 + rng.Intn(5)
			case 2: // tiny intermediate row budget on the join path
				base.MaxIntermediateRows = 1 + rng.Intn(10)
			case 3: // injected operator fault
				points := []string{faults.PointEngineScan, faults.PointEngineJoin, faults.PointEngineProject}
				faultPoint = points[rng.Intn(len(points))]
				faultAfter = rng.Intn(2)
			}

			rowOpts := base
			rowOpts.UseRowEngine = true
			rowOpts.Parallelism = -1
			refRes, refErr := fuzzRun(ctx, db, stmt, rowOpts, faultPoint, faultAfter)

			colSerial := base
			colSerial.Parallelism = -1
			res1, err1 := fuzzRun(ctx, db, stmt, colSerial, faultPoint, faultAfter)
			fuzzCompare(t, sql, "columnar-serial", refRes, refErr, res1, err1)

			colPar := base
			colPar.Parallelism = 8
			res8, err8 := fuzzRun(ctx, db, stmt, colPar, faultPoint, faultAfter)
			fuzzCompare(t, sql, "columnar-parallel-8", refRes, refErr, res8, err8)

			// Count fast path: CountContext must agree with the row engine
			// whether or not the columnar count-only specialization applies.
			if faultPoint == "" && ctx.Err() == nil && base.MaxOutputRows == 0 && base.MaxIntermediateRows == 100_000 {
				rc, rcErr := CountContext(ctx, db, stmt, Options{UseRowEngine: true, MaxIntermediateRows: 100_000})
				cc, ccErr := CountContext(ctx, db, stmt, Options{MaxIntermediateRows: 100_000})
				if (rcErr == nil) != (ccErr == nil) || rc != cc {
					t.Fatalf("CountContext diverges for %q: row %d (%v) vs columnar %d (%v)", sql, rc, rcErr, cc, ccErr)
				}
			}
		}
	})
}
