package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"asqprl/internal/datagen"
	"asqprl/internal/sqlparse"
)

// resultFingerprint renders a result into a canonical string: schema, every
// row key in order, and every lineage entry. Two byte-identical results
// produce equal fingerprints and vice versa.
func resultFingerprint(res *Result) string {
	var s strings.Builder
	fmt.Fprintf(&s, "schema=%v rows=%d\n", res.Table.Schema, res.Table.NumRows())
	for i, r := range res.Table.Rows {
		fmt.Fprintf(&s, "%d: %s\n", i, r.Key())
	}
	for i, lin := range res.Lineage {
		fmt.Fprintf(&s, "lin %d: %v\n", i, lin)
	}
	return s.String()
}

// TestParallelMatchesSerial checks the tentpole determinism property: for
// every query shape, Parallelism=8 produces byte-identical rows and lineage
// to the serial path, under several GOMAXPROCS settings. The scale is chosen
// so the candidate scans and join probes exceed parallelMinRows and actually
// take the parallel paths.
func TestParallelMatchesSerial(t *testing.T) {
	db := datagen.IMDB(0.3, 1)
	for _, procs := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for name, sql := range benchQueries {
				stmt := sqlparse.MustParse(sql)
				serial, err := ExecuteWith(db, stmt, Options{TrackLineage: true, Parallelism: -1})
				if err != nil {
					t.Fatalf("%s serial: %v", name, err)
				}
				parallel, err := ExecuteWith(db, stmt, Options{TrackLineage: true, Parallelism: 8})
				if err != nil {
					t.Fatalf("%s parallel: %v", name, err)
				}
				if sf, pf := resultFingerprint(serial), resultFingerprint(parallel); sf != pf {
					t.Errorf("%s: parallel result diverges from serial\nserial:\n%.400s\nparallel:\n%.400s", name, sf, pf)
				}
			}
		})
	}
}

// TestParallelIntermediateBudget checks that the shared atomic row accounting
// of the parallel probe trips ErrRowBudget exactly like the serial counter.
func TestParallelIntermediateBudget(t *testing.T) {
	db := datagen.IMDB(0.3, 1)
	stmt := sqlparse.MustParse(benchQueries["HashJoin"])
	for _, par := range []int{-1, 8} {
		_, err := ExecuteWith(db, stmt, Options{MaxIntermediateRows: 10, Parallelism: par})
		if !errors.Is(err, ErrRowBudget) {
			t.Errorf("parallelism %d: err = %v, want ErrRowBudget", par, err)
		}
	}
}

// TestParallelDeadlineAndCancel checks that an expired deadline and a
// canceled context surface as the same typed errors on the parallel paths.
func TestParallelDeadlineAndCancel(t *testing.T) {
	db := datagen.IMDB(0.3, 1)
	stmt := sqlparse.MustParse(benchQueries["ThreeWay"])

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ExecuteWithContext(ctx, db, stmt, Options{Parallelism: 8}); !errors.Is(err, ErrDeadline) {
		t.Errorf("expired deadline: err = %v, want ErrDeadline", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := ExecuteWithContext(ctx2, db, stmt, Options{Parallelism: 8}); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled context: err = %v, want ErrCanceled", err)
	}
}

// TestParallelOutputBudgetPartialRows checks that an output budget keeps the
// serial projection (the partial rows produced before the trip must be
// returned), even when parallelism is requested.
func TestParallelOutputBudgetPartialRows(t *testing.T) {
	db := datagen.IMDB(0.3, 1)
	stmt := sqlparse.MustParse("SELECT * FROM title")
	res, err := ExecuteWith(db, stmt, Options{MaxOutputRows: 7, Parallelism: 8})
	if !errors.Is(err, ErrRowBudget) {
		t.Fatalf("err = %v, want ErrRowBudget", err)
	}
	if res == nil || res.Table.NumRows() != 7 {
		t.Fatalf("partial rows = %v, want exactly 7", res)
	}
	serial, serr := ExecuteWith(db, stmt, Options{MaxOutputRows: 7, Parallelism: -1})
	if !errors.Is(serr, ErrRowBudget) {
		t.Fatalf("serial err = %v, want ErrRowBudget", serr)
	}
	if sf, pf := resultFingerprint(serial), resultFingerprint(res); sf != pf {
		t.Errorf("partial results diverge between serial and parallel settings")
	}
}

// TestForEachMorselOrderedError checks that the first error in morsel order
// wins regardless of worker interleaving.
func TestForEachMorselOrderedError(t *testing.T) {
	n := morselRows*6 + 17
	err := forEachMorsel(4, n, func(m, lo, hi int) error {
		if m >= 2 {
			return fmt.Errorf("morsel %d failed", m)
		}
		return nil
	})
	if err == nil || err.Error() != "morsel 2 failed" {
		t.Fatalf("err = %v, want the morsel-order-first failure", err)
	}
	if err := forEachMorsel(4, n, func(m, lo, hi int) error { return nil }); err != nil {
		t.Fatalf("clean run: %v", err)
	}
}

// TestMorselPartitionCovers checks the morsel ranges partition [0, n) exactly.
func TestMorselPartitionCovers(t *testing.T) {
	for _, n := range []int{0, 1, morselRows - 1, morselRows, morselRows + 1, 3*morselRows + 5} {
		covered := make([]bool, n)
		err := forEachMorsel(3, n, func(m, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if covered[i] {
					return fmt.Errorf("row %d covered twice", i)
				}
				covered[i] = true
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("n=%d: row %d never covered", n, i)
			}
		}
	}
}

// TestOptionsWorkers checks the Parallelism -> worker-count mapping.
func TestOptionsWorkers(t *testing.T) {
	if w := (Options{Parallelism: 0}).workers(); w != runtime.NumCPU() {
		t.Errorf("default workers = %d, want NumCPU %d", w, runtime.NumCPU())
	}
	if w := (Options{Parallelism: -3}).workers(); w != 1 {
		t.Errorf("negative parallelism workers = %d, want 1", w)
	}
	if w := (Options{Parallelism: 5}).workers(); w != 5 {
		t.Errorf("explicit workers = %d, want 5", w)
	}
}
