package engine

import (
	"time"

	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
)

// queryTimer collects per-phase wall-clock timings for one query execution
// and flushes them into the default obs registry. A nil *queryTimer is a
// no-op, which is what startQueryTimer returns when observability is
// disabled — the only cost on the hot path is then one atomic load and a few
// nil-receiver calls.
type queryTimer struct {
	start  time.Time
	mark   time.Time
	phases []phaseTime
}

type phaseTime struct {
	name string
	d    time.Duration
}

// recordWorkers publishes the effective operator parallelism of the query
// being executed. Only called when observability is enabled (timer active).
func recordWorkers(n int) {
	obs.Default().Gauge("engine/parallel_workers").Set(float64(n))
}

func startQueryTimer() *queryTimer {
	if !obs.Enabled() {
		return nil
	}
	now := time.Now()
	return &queryTimer{start: now, mark: now}
}

// phase closes the current phase under the given name.
func (t *queryTimer) phase(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.phases = append(t.phases, phaseTime{name, now.Sub(t.mark)})
	t.mark = now
}

// finish records query count, overall and per-plan-shape latency,
// per-operator execution counts, and per-phase latency. b and preds may be
// nil when binding failed before a plan existed.
func (t *queryTimer) finish(b *binder, preds []predClass, stmt *sqlparse.Select, err error) {
	if t == nil {
		return
	}
	reg := obs.Default()
	reg.Counter("engine/queries").Inc()
	if err != nil {
		reg.Counter("engine/errors").Inc()
	}
	total := time.Since(t.start)
	reg.Histogram("engine/query/seconds").ObserveDuration(total)
	if b != nil {
		shape := planShape(b, preds, stmt)
		reg.Histogram("engine/query/seconds/" + shape).ObserveDuration(total)
		counts := planOpCounts(b, preds)
		reg.Counter("engine/op/scan").Add(int64(len(b.tables)))
		reg.Counter("engine/op/hash_join").Add(int64(counts.hashJoins))
		reg.Counter("engine/op/cross_join").Add(int64(counts.crossJoins))
		reg.Counter("engine/op/residual_filter").Add(int64(counts.residuals))
		if stmt.HasAggregates() {
			reg.Counter("engine/op/aggregate").Inc()
		}
		if stmt.Distinct {
			reg.Counter("engine/op/distinct").Inc()
		}
		if len(stmt.OrderBy) > 0 {
			reg.Counter("engine/op/sort").Inc()
		}
	}
	for _, p := range t.phases {
		reg.Histogram("engine/phase/" + p.name + "/seconds").Observe(p.d.Seconds())
	}
}
