package engine

import (
	"fmt"
	"testing"

	"asqprl/internal/datagen"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// Micro-benchmarks for the query executor over an IMDB-shaped database
// (~10k tuples at this scale).

var benchQueries = map[string]string{
	"Filter":    "SELECT * FROM title WHERE genre = 'drama' AND production_year > 1990",
	"HashJoin":  "SELECT t.title, c.role FROM title t JOIN cast_info c ON t.id = c.title_id WHERE c.role = 'director'",
	"ThreeWay":  "SELECT n.name FROM title t JOIN cast_info c ON t.id = c.title_id JOIN name n ON c.name_id = n.id WHERE t.genre = 'drama'",
	"Aggregate": "SELECT genre, COUNT(*), AVG(rating) FROM title GROUP BY genre",
	"OrderBy":   "SELECT title, rating FROM title WHERE votes > 100 ORDER BY rating DESC LIMIT 20",
}

func benchmarkQuery(b *testing.B, name string) {
	db := datagen.IMDB(0.1, 1)
	stmt := sqlparse.MustParse(benchQueries[name])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteWith(db, stmt, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteFilter(b *testing.B)    { benchmarkQuery(b, "Filter") }
func BenchmarkExecuteHashJoin(b *testing.B)  { benchmarkQuery(b, "HashJoin") }
func BenchmarkExecuteThreeWay(b *testing.B)  { benchmarkQuery(b, "ThreeWay") }
func BenchmarkExecuteAggregate(b *testing.B) { benchmarkQuery(b, "Aggregate") }
func BenchmarkExecuteOrderBy(b *testing.B)   { benchmarkQuery(b, "OrderBy") }

// BenchmarkLineageOverhead compares execution with and without lineage
// tracking (the preprocessing pipeline pays this cost).
func BenchmarkLineageOverhead(b *testing.B) {
	db := datagen.IMDB(0.1, 1)
	stmt := sqlparse.MustParse(benchQueries["HashJoin"])
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecuteWith(db, stmt, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecuteWith(db, stmt, Options{TrackLineage: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelThreeWay runs the three-way join at a scale where the
// morsel-parallel scan, probe and projection paths engage, across worker
// counts. On a single-core host the counts tie (the parallel paths only add
// scheduling overhead); the sub-run names keep multi-core results comparable
// across machines in the BENCH history.
func BenchmarkParallelThreeWay(b *testing.B) {
	db := datagen.IMDB(0.3, 1)
	stmt := sqlparse.MustParse(benchQueries["ThreeWay"])
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := Options{Parallelism: workers}
			if workers == 1 {
				opts.Parallelism = -1 // serial path, not a one-worker pool
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ExecuteWith(db, stmt, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubsetSpeedup contrasts full-database execution against the same
// query on a 2% materialized subset — the paper's headline efficiency gain.
func BenchmarkSubsetSpeedup(b *testing.B) {
	db := datagen.IMDB(0.1, 1)
	sub := table.NewSubset()
	for _, t := range db.Tables() {
		step := 50 // keep 2%
		for i := 0; i < t.NumRows(); i += step {
			sub.Add(table.RowID{Table: t.Name, Row: i})
		}
	}
	sdb := sub.Materialize(db)
	stmt := sqlparse.MustParse(benchQueries["ThreeWay"])
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecuteWith(db, stmt, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("subset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecuteWith(sdb, stmt, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColumnarScan contrasts the row-at-a-time filter scan against the
// vectorized kernel scan (typed vectors, dictionary string masks, zone-map
// pruning) on the same query and data. This is the scan-heavy benchmark the
// benchdiff regression gate watches.
func BenchmarkColumnarScan(b *testing.B) {
	db := datagen.IMDB(0.1, 1)
	stmt := sqlparse.MustParse(benchQueries["Filter"])
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"row", Options{UseRowEngine: true}},
		{"columnar", Options{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// Derive the columnar view outside the timed region: it is
			// cached across queries in production use.
			for _, t := range db.Tables() {
				t.Columns()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ExecuteWith(db, stmt, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashJoinAllocs pins the allocation win of typed join keys: the
// row engine materializes a key string per probed row, the columnar join
// hashes fixed-size typed keys and allocates per output batch instead.
func BenchmarkHashJoinAllocs(b *testing.B) {
	db := datagen.IMDB(0.1, 1)
	stmt := sqlparse.MustParse(benchQueries["HashJoin"])
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"row", Options{UseRowEngine: true}},
		{"columnar", Options{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for _, t := range db.Tables() {
				t.Columns()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ExecuteWith(db, stmt, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
