package engine

import (
	"strings"
	"testing"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// testDB builds a small movie database with two joinable tables.
func testDB() *table.Database {
	movies := table.New("movies", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "title", Kind: table.KindString},
		{Name: "year", Kind: table.KindInt},
		{Name: "rating", Kind: table.KindFloat},
		{Name: "genre", Kind: table.KindString},
	})
	rows := []struct {
		id     int64
		title  string
		year   int64
		rating float64
		genre  string
	}{
		{1, "Alpha", 1999, 8.1, "drama"},
		{2, "Beta", 2005, 6.4, "comedy"},
		{3, "Gamma", 2010, 7.7, "drama"},
		{4, "Delta", 2015, 5.2, "action"},
		{5, "Epsilon", 2020, 9.0, "drama"},
	}
	for _, r := range rows {
		movies.AppendRow(table.Row{
			table.NewInt(r.id), table.NewString(r.title), table.NewInt(r.year),
			table.NewFloat(r.rating), table.NewString(r.genre),
		})
	}

	credits := table.New("credits", table.Schema{
		{Name: "movie_id", Kind: table.KindInt},
		{Name: "person", Kind: table.KindString},
		{Name: "role", Kind: table.KindString},
	})
	creditRows := []struct {
		mid    int64
		person string
		role   string
	}{
		{1, "Ann", "director"},
		{1, "Bob", "actor"},
		{2, "Cat", "director"},
		{3, "Ann", "director"},
		{3, "Dan", "actor"},
		{5, "Ann", "actor"},
		{9, "Ghost", "actor"}, // dangling FK
	}
	for _, r := range creditRows {
		credits.AppendRow(table.Row{
			table.NewInt(r.mid), table.NewString(r.person), table.NewString(r.role),
		})
	}

	db := table.NewDatabase()
	db.Add(movies)
	db.Add(credits)
	return db
}

func mustExec(t *testing.T, db *table.Database, sql string) *Result {
	t.Helper()
	res, err := ExecuteSQL(db, sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestExecuteSimpleFilter(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT title FROM movies WHERE year > 2004")
	if res.Table.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", res.Table.NumRows())
	}
	if res.Table.Rows[0][0].Str != "Beta" {
		t.Errorf("first row = %v", res.Table.Rows[0])
	}
}

func TestExecuteStarProjection(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT * FROM movies WHERE id = 1")
	if res.Table.NumCols() != 5 {
		t.Fatalf("cols = %d, want 5", res.Table.NumCols())
	}
	if res.Table.Schema[0].Name != "movies.id" {
		t.Errorf("star column names should be qualified, got %q", res.Table.Schema[0].Name)
	}
}

func TestExecutePredicates(t *testing.T) {
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM movies WHERE genre = 'drama'", 3},
		{"SELECT * FROM movies WHERE genre <> 'drama'", 2},
		{"SELECT * FROM movies WHERE year BETWEEN 2000 AND 2015", 3},
		{"SELECT * FROM movies WHERE year NOT BETWEEN 2000 AND 2015", 2},
		{"SELECT * FROM movies WHERE genre IN ('drama', 'action')", 4},
		{"SELECT * FROM movies WHERE genre NOT IN ('drama', 'action')", 1},
		{"SELECT * FROM movies WHERE title LIKE '%eta'", 1},
		{"SELECT * FROM movies WHERE title LIKE '_elta'", 1},
		{"SELECT * FROM movies WHERE title NOT LIKE 'A%'", 4},
		{"SELECT * FROM movies WHERE rating >= 7.7 AND genre = 'drama'", 3},
		{"SELECT * FROM movies WHERE year < 2000 OR year > 2016", 2},
		{"SELECT * FROM movies WHERE NOT (genre = 'drama')", 2},
		{"SELECT * FROM movies WHERE rating > 100", 0},
		{"SELECT * FROM movies WHERE year % 2 = 0", 2},
		{"SELECT * FROM movies WHERE year + 5 > 2020", 1},
		{"SELECT * FROM movies WHERE 1 = 1", 5},
		{"SELECT * FROM movies WHERE 1 = 2", 0},
	}
	db := testDB()
	for _, c := range cases {
		res := mustExec(t, db, c.sql)
		if res.Table.NumRows() != c.want {
			t.Errorf("%s: rows = %d, want %d", c.sql, res.Table.NumRows(), c.want)
		}
	}
}

func TestExecuteImplicitJoin(t *testing.T) {
	res := mustExec(t, testDB(),
		"SELECT m.title, c.person FROM movies m, credits c WHERE m.id = c.movie_id AND c.role = 'director'")
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.NumRows())
	}
}

func TestExecuteExplicitJoin(t *testing.T) {
	res := mustExec(t, testDB(),
		"SELECT m.title, c.person FROM movies m JOIN credits c ON m.id = c.movie_id WHERE c.person = 'Ann'")
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.NumRows())
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	// Cross-check the hash join against a brute-force nested loop.
	db := testDB()
	res := mustExec(t, db, "SELECT m.id, c.person FROM movies m, credits c WHERE m.id = c.movie_id")
	movies, credits := db.Table("movies"), db.Table("credits")
	want := 0
	for _, mr := range movies.Rows {
		for _, cr := range credits.Rows {
			if mr[0].Equal(cr[0]) {
				want++
			}
		}
	}
	if res.Table.NumRows() != want {
		t.Errorf("hash join rows = %d, brute force = %d", res.Table.NumRows(), want)
	}
}

func TestLineageTracking(t *testing.T) {
	res := mustExec(t, testDB(),
		"SELECT m.title FROM movies m JOIN credits c ON m.id = c.movie_id WHERE c.role = 'director'")
	if len(res.Lineage) != res.Table.NumRows() {
		t.Fatalf("lineage entries = %d, rows = %d", len(res.Lineage), res.Table.NumRows())
	}
	for i, lin := range res.Lineage {
		if len(lin) != 2 {
			t.Fatalf("row %d lineage arity = %d, want 2", i, len(lin))
		}
		if lin[0].Table != "movies" || lin[1].Table != "credits" {
			t.Errorf("row %d lineage tables = %v", i, lin)
		}
	}
	// The movie row referenced by lineage must actually satisfy the query.
	db := testDB()
	for _, lin := range res.Lineage {
		row := db.Table("movies").Rows[lin[0].Row]
		if row[0].Kind != table.KindInt {
			t.Error("lineage points at wrong column layout")
		}
	}
}

func TestLineageDisabled(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT title FROM movies")
	res, err := ExecuteWith(testDB(), stmt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lineage != nil {
		t.Error("lineage should be nil when not tracked")
	}
}

func TestDistinct(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT DISTINCT genre FROM movies")
	if res.Table.NumRows() != 3 {
		t.Fatalf("distinct genres = %d, want 3", res.Table.NumRows())
	}
}

func TestOrderByAndLimit(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT title, rating FROM movies ORDER BY rating DESC LIMIT 2")
	if res.Table.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.Table.NumRows())
	}
	if res.Table.Rows[0][0].Str != "Epsilon" || res.Table.Rows[1][0].Str != "Alpha" {
		t.Errorf("order wrong: %v", res.Table.Rows)
	}
}

func TestOrderByMultiKey(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT genre, title FROM movies ORDER BY genre ASC, title DESC")
	if res.Table.Rows[0][0].Str != "action" {
		t.Errorf("first genre = %v", res.Table.Rows[0])
	}
	// Within drama (rows 2..4), titles should be descending.
	var dramas []string
	for _, r := range res.Table.Rows {
		if r[0].Str == "drama" {
			dramas = append(dramas, r[1].Str)
		}
	}
	if strings.Join(dramas, ",") != "Gamma,Epsilon,Alpha" {
		t.Errorf("drama order = %v", dramas)
	}
}

func TestLimitZero(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT * FROM movies LIMIT 0")
	if res.Table.NumRows() != 0 {
		t.Errorf("LIMIT 0 returned %d rows", res.Table.NumRows())
	}
}

func TestAggregatesGlobal(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT COUNT(*), SUM(rating), AVG(year), MIN(rating), MAX(rating) FROM movies")
	if res.Table.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", res.Table.NumRows())
	}
	row := res.Table.Rows[0]
	if row[0].Int != 5 {
		t.Errorf("COUNT = %v", row[0])
	}
	if row[1].Float != 8.1+6.4+7.7+5.2+9.0 {
		t.Errorf("SUM = %v", row[1])
	}
	if row[3].Float != 5.2 || row[4].Float != 9.0 {
		t.Errorf("MIN/MAX = %v/%v", row[3], row[4])
	}
}

func TestAggregatesGroupBy(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT genre, COUNT(*) AS n FROM movies GROUP BY genre ORDER BY n DESC")
	if res.Table.NumRows() != 3 {
		t.Fatalf("groups = %d, want 3", res.Table.NumRows())
	}
	if res.Table.Rows[0][0].Str != "drama" || res.Table.Rows[0][1].Int != 3 {
		t.Errorf("top group = %v", res.Table.Rows[0])
	}
}

func TestAggregatesHaving(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT genre, COUNT(*) FROM movies GROUP BY genre HAVING COUNT(*) >= 2")
	if res.Table.NumRows() != 1 {
		t.Fatalf("groups = %d, want 1", res.Table.NumRows())
	}
	if res.Table.Rows[0][0].Str != "drama" {
		t.Errorf("group = %v", res.Table.Rows[0])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT COUNT(*), SUM(rating) FROM movies WHERE year > 3000")
	if res.Table.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", res.Table.NumRows())
	}
	if res.Table.Rows[0][0].Int != 0 {
		t.Errorf("COUNT over empty = %v", res.Table.Rows[0][0])
	}
	if !res.Table.Rows[0][1].IsNull() {
		t.Errorf("SUM over empty should be NULL, got %v", res.Table.Rows[0][1])
	}
}

func TestAggregateGroupByEmptyInput(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT genre, COUNT(*) FROM movies WHERE year > 3000 GROUP BY genre")
	if res.Table.NumRows() != 0 {
		t.Errorf("grouped aggregate over empty input should yield no rows, got %d", res.Table.NumRows())
	}
}

func TestAggregateCountColumnSkipsNulls(t *testing.T) {
	db := testDB()
	m := db.Table("movies")
	m.Rows[0][3] = table.Null // rating of Alpha
	res := mustExec(t, db, "SELECT COUNT(rating) FROM movies")
	if res.Table.Rows[0][0].Int != 4 {
		t.Errorf("COUNT(col) with null = %v, want 4", res.Table.Rows[0][0])
	}
}

func TestAggregateExpressionOverAggregates(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT SUM(rating) / COUNT(*) AS avg_rating FROM movies")
	avg := res.Table.Rows[0][0].Float
	want := (8.1 + 6.4 + 7.7 + 5.2 + 9.0) / 5
	if avg < want-1e-9 || avg > want+1e-9 {
		t.Errorf("avg via expression = %v, want %v", avg, want)
	}
}

func TestNullJoinSemantics(t *testing.T) {
	db := testDB()
	credits := db.Table("credits")
	credits.Rows[0][0] = table.Null // Ann/director now has NULL movie_id
	res := mustExec(t, db, "SELECT m.title FROM movies m JOIN credits c ON m.id = c.movie_id")
	// Previously 6 matching pairs, one removed by the NULL key.
	if res.Table.NumRows() != 5 {
		t.Errorf("rows = %d, want 5 (NULL keys never join)", res.Table.NumRows())
	}
}

func TestCrossProduct(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT m.id, c.person FROM movies m, credits c")
	if res.Table.NumRows() != 5*7 {
		t.Errorf("cross product rows = %d, want 35", res.Table.NumRows())
	}
}

func TestCrossProductLimitEnforced(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT m.id FROM movies m, credits c")
	_, err := ExecuteWith(testDB(), stmt, Options{MaxIntermediateRows: 10})
	if err == nil {
		t.Error("cross product over limit should fail")
	}
}

func TestErrorCases(t *testing.T) {
	db := testDB()
	bad := []string{
		"SELECT * FROM ghost_table",
		"SELECT ghost_col FROM movies",
		"SELECT id FROM movies, credits",                                   // ambiguous? id only in movies — fine; use person
		"SELECT x.title FROM movies m",                                     // unknown qualifier
		"SELECT m.title FROM movies m, movies m",                           // duplicate alias
		"SELECT * FROM movies WHERE COUNT(*) > 1",                          // aggregate in WHERE
		"SELECT *, id FROM movies",                                         // star is exclusive in our grammar
		"SELECT * FROM movies GROUP BY genre",                              // star with group by
		"SELECT title FROM movies ORDER BY ghost",                          // unknown order col
		"SELECT genre, COUNT(*) FROM movies GROUP BY genre ORDER BY ghost", // unknown agg order col
	}
	for _, sql := range bad {
		if _, err := ExecuteSQL(db, sql); err == nil {
			// "SELECT id FROM movies, credits" is actually unambiguous; skip.
			if sql == "SELECT id FROM movies, credits" {
				continue
			}
			t.Errorf("%s: expected error", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB()
	// Both tables have no shared names; add one to force ambiguity.
	p := table.New("people", table.Schema{{Name: "person", Kind: table.KindString}})
	p.AppendRow(table.Row{table.NewString("Ann")})
	db.Add(p)
	if _, err := ExecuteSQL(db, "SELECT person FROM credits, people"); err == nil {
		t.Error("ambiguous column should error")
	}
}

func TestCountHelper(t *testing.T) {
	n, err := Count(testDB(), sqlparse.MustParse("SELECT * FROM movies WHERE genre = 'drama'"))
	if err != nil || n != 3 {
		t.Errorf("Count = %d (%v), want 3", n, err)
	}
}

func TestRewriteAggregateToSPJ(t *testing.T) {
	stmt := sqlparse.MustParse(
		"SELECT genre, COUNT(*), AVG(rating) FROM movies WHERE year > 2000 GROUP BY genre HAVING COUNT(*) > 1 ORDER BY genre LIMIT 3")
	spj := RewriteAggregateToSPJ(stmt)
	if spj.HasAggregates() {
		t.Fatal("rewrite should remove aggregates")
	}
	if spj.Where == nil {
		t.Error("rewrite should keep WHERE")
	}
	// Should project genre (group key) and rating (AVG argument).
	if len(spj.Items) != 2 {
		t.Fatalf("rewritten items = %v", spj.Items)
	}
	res, err := Execute(testDB(), spj)
	if err != nil {
		t.Fatalf("executing rewritten query: %v", err)
	}
	if res.Table.NumRows() != 4 {
		t.Errorf("rewritten rows = %d, want 4 (movies after 2000)", res.Table.NumRows())
	}
}

func TestRewriteNonAggregateIsClone(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT title FROM movies WHERE year > 2000")
	spj := RewriteAggregateToSPJ(stmt)
	if spj == stmt {
		t.Error("rewrite should return a copy")
	}
	if spj.String() != stmt.String() {
		t.Error("non-aggregate rewrite should be identical")
	}
}

func TestRewriteCountStarOnly(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT COUNT(*) FROM movies WHERE year > 2000")
	spj := RewriteAggregateToSPJ(stmt)
	if !spj.Star {
		t.Errorf("COUNT(*)-only rewrite should become SELECT *: %s", spj)
	}
}

func TestSubsetExecution(t *testing.T) {
	// Queries over a materialized subset return a subset of full results.
	db := testDB()
	sub := table.NewSubset()
	sub.Add(table.RowID{Table: "movies", Row: 0})
	sub.Add(table.RowID{Table: "movies", Row: 4})
	sub.Add(table.RowID{Table: "credits", Row: 0})
	sub.Add(table.RowID{Table: "credits", Row: 5})
	sdb := sub.Materialize(db)

	full := mustExec(t, db, "SELECT m.title, c.person FROM movies m JOIN credits c ON m.id = c.movie_id")
	part := mustExec(t, sdb, "SELECT m.title, c.person FROM movies m JOIN credits c ON m.id = c.movie_id")
	if part.Table.NumRows() > full.Table.NumRows() {
		t.Fatal("subset result larger than full result")
	}
	fullKeys := map[string]bool{}
	for _, r := range full.Table.Rows {
		fullKeys[r.Key()] = true
	}
	for _, r := range part.Table.Rows {
		if !fullKeys[r.Key()] {
			t.Errorf("subset row %v not in full result", r)
		}
	}
	if part.Table.NumRows() != 2 {
		t.Errorf("subset rows = %d, want 2 (Alpha/Ann, Epsilon/Ann)", part.Table.NumRows())
	}
}
