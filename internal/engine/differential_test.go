package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"asqprl/internal/table"
)

// randomDB builds a small two-table database with random integer data.
func randomDB(rng *rand.Rand) *table.Database {
	a := table.New("ta", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "x", Kind: table.KindInt},
		{Name: "y", Kind: table.KindInt},
	})
	for i := 0; i < 20+rng.Intn(20); i++ {
		a.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewInt(int64(rng.Intn(10))),
			table.NewInt(int64(rng.Intn(10))),
		})
	}
	b := table.New("tb", table.Schema{
		{Name: "ta_id", Kind: table.KindInt},
		{Name: "z", Kind: table.KindInt},
	})
	for i := 0; i < 20+rng.Intn(20); i++ {
		b.AppendRow(table.Row{
			table.NewInt(int64(rng.Intn(a.NumRows() + 5))), // some dangling
			table.NewInt(int64(rng.Intn(10))),
		})
	}
	db := table.NewDatabase()
	db.Add(a)
	db.Add(b)
	return db
}

// naiveSingleTableCount evaluates "SELECT * FROM ta WHERE x <op> c [AND/OR y <op2> c2]"
// with an independent interpreter, for differential testing.
type simplePred struct {
	col string
	op  string
	val int64
}

func (p simplePred) eval(t *table.Table, row table.Row) bool {
	v := row[t.ColumnIndex(p.col)].Int
	switch p.op {
	case ">":
		return v > p.val
	case "<":
		return v < p.val
	case "=":
		return v == p.val
	case ">=":
		return v >= p.val
	case "<=":
		return v <= p.val
	case "<>":
		return v != p.val
	}
	return false
}

// TestDifferentialSingleTable compares the engine against a hand-rolled
// evaluator over many random predicates.
func TestDifferentialSingleTable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := []string{">", "<", "=", ">=", "<=", "<>"}
	cols := []string{"x", "y"}
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		ta := db.Table("ta")
		p1 := simplePred{col: cols[rng.Intn(2)], op: ops[rng.Intn(len(ops))], val: int64(rng.Intn(12) - 1)}
		p2 := simplePred{col: cols[rng.Intn(2)], op: ops[rng.Intn(len(ops))], val: int64(rng.Intn(12) - 1)}
		conn := "AND"
		if rng.Intn(2) == 0 {
			conn = "OR"
		}
		sql := fmt.Sprintf("SELECT * FROM ta WHERE %s %s %d %s %s %s %d",
			p1.col, p1.op, p1.val, conn, p2.col, p2.op, p2.val)

		want := 0
		for _, row := range ta.Rows {
			a, b := p1.eval(ta, row), p2.eval(ta, row)
			if (conn == "AND" && a && b) || (conn == "OR" && (a || b)) {
				want++
			}
		}
		res, err := ExecuteSQL(db, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if res.Table.NumRows() != want {
			t.Fatalf("%s: engine %d rows, naive %d", sql, res.Table.NumRows(), want)
		}
	}
}

// TestDifferentialJoinPaths verifies the explicit-JOIN and implicit-join
// code paths agree, and both agree with a nested-loop count.
func TestDifferentialJoinPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		db := randomDB(rng)
		zCut := rng.Intn(10)
		explicit := fmt.Sprintf(
			"SELECT ta.id, tb.z FROM ta JOIN tb ON ta.id = tb.ta_id WHERE tb.z > %d", zCut)
		implicit := fmt.Sprintf(
			"SELECT ta.id, tb.z FROM ta, tb WHERE ta.id = tb.ta_id AND tb.z > %d", zCut)

		r1, err := ExecuteSQL(db, explicit)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ExecuteSQL(db, implicit)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Table.NumRows() != r2.Table.NumRows() {
			t.Fatalf("join paths disagree: explicit %d vs implicit %d",
				r1.Table.NumRows(), r2.Table.NumRows())
		}
		// Nested-loop ground truth.
		ta, tb := db.Table("ta"), db.Table("tb")
		want := 0
		for _, ra := range ta.Rows {
			for _, rb := range tb.Rows {
				if ra[0].Int == rb[0].Int && rb[1].Int > int64(zCut) {
					want++
				}
			}
		}
		if r1.Table.NumRows() != want {
			t.Fatalf("engine %d vs nested-loop %d", r1.Table.NumRows(), want)
		}
	}
}

// TestSubsetMonotonicityProperty: for monotone SPJ queries, executing over a
// subset of the database returns a subset of the full results.
func TestSubsetMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng)
		sql := fmt.Sprintf("SELECT ta.id, tb.z FROM ta JOIN tb ON ta.id = tb.ta_id WHERE ta.x > %d", rng.Intn(8))
		full, err := ExecuteSQL(db, sql)
		if err != nil {
			t.Fatal(err)
		}
		// Random subset of each table.
		sub := table.NewSubset()
		for _, name := range db.TableNames() {
			n := db.Table(name).NumRows()
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					sub.Add(table.RowID{Table: name, Row: i})
				}
			}
		}
		part, err := ExecuteSQL(sub.Materialize(db), sql)
		if err != nil {
			t.Fatal(err)
		}
		fullKeys := map[string]int{}
		for _, r := range full.Table.Rows {
			fullKeys[r.Key()]++
		}
		for _, r := range part.Table.Rows {
			if fullKeys[r.Key()] == 0 {
				t.Fatalf("subset produced row absent from full result: %v", r)
			}
			fullKeys[r.Key()]--
		}
	}
}

// TestAggregateConsistencyWithManualGrouping cross-checks GROUP BY results
// against a manual grouping over the same filtered rows.
func TestAggregateConsistencyWithManualGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng)
		cut := rng.Intn(8)
		sql := fmt.Sprintf("SELECT x, COUNT(*), SUM(y) FROM ta WHERE y >= %d GROUP BY x", cut)
		res, err := ExecuteSQL(db, sql)
		if err != nil {
			t.Fatal(err)
		}
		type agg struct {
			n   int64
			sum float64
		}
		want := map[int64]*agg{}
		for _, r := range db.Table("ta").Rows {
			if r[2].Int < int64(cut) {
				continue
			}
			a := want[r[1].Int]
			if a == nil {
				a = &agg{}
				want[r[1].Int] = a
			}
			a.n++
			a.sum += float64(r[2].Int)
		}
		if res.Table.NumRows() != len(want) {
			t.Fatalf("groups %d vs %d", res.Table.NumRows(), len(want))
		}
		for _, r := range res.Table.Rows {
			a := want[r[0].Int]
			if a == nil {
				t.Fatalf("unexpected group %v", r[0])
			}
			if r[1].Int != a.n || r[2].Float != a.sum {
				t.Fatalf("group %v: engine (%v,%v) vs manual (%v,%v)",
					r[0], r[1], r[2], a.n, a.sum)
			}
		}
	}
}

// TestDistinctIdempotent: applying DISTINCT twice equals once; result sizes
// are bounded by the non-distinct result.
func TestDistinctIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng)
		plain, err := ExecuteSQL(db, "SELECT x FROM ta")
		if err != nil {
			t.Fatal(err)
		}
		distinct, err := ExecuteSQL(db, "SELECT DISTINCT x FROM ta")
		if err != nil {
			t.Fatal(err)
		}
		if distinct.Table.NumRows() > plain.Table.NumRows() {
			t.Fatal("DISTINCT grew the result")
		}
		seen := map[string]bool{}
		for _, r := range distinct.Table.Rows {
			k := r.Key()
			if seen[k] {
				t.Fatal("DISTINCT produced duplicates")
			}
			seen[k] = true
		}
	}
}

// TestOrderByIsSorted verifies ordering over random data.
func TestOrderByIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng)
		res, err := ExecuteSQL(db, "SELECT x, y FROM ta ORDER BY x DESC, y ASC")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < res.Table.NumRows(); i++ {
			prev, cur := res.Table.Rows[i-1], res.Table.Rows[i]
			if prev[0].Int < cur[0].Int {
				t.Fatal("primary key not descending")
			}
			if prev[0].Int == cur[0].Int && prev[1].Int > cur[1].Int {
				t.Fatal("secondary key not ascending within ties")
			}
		}
	}
}
