package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"asqprl/internal/faults"
	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// Result is the output of executing a statement.
type Result struct {
	// Table holds the projected output rows. It is nil only for count-only
	// execution (see CountContext), where Count carries the answer and no
	// rows are materialized.
	Table *table.Table
	// Lineage, when tracked, holds for each output row the base-table rows
	// that produced it (one RowID per relation in the FROM/JOIN list).
	// It is nil for aggregate queries.
	Lineage [][]table.RowID
	// Count is the result cardinality for count-only execution (Table nil).
	Count int
}

// Options tunes execution.
type Options struct {
	// MaxIntermediateRows bounds the size of join intermediates; execution
	// fails with an error wrapping ErrRowBudget when exceeded. Zero means
	// the default (2,000,000).
	MaxIntermediateRows int
	// MaxOutputRows bounds the number of emitted result rows; execution
	// stops with an error wrapping ErrRowBudget when exceeded. For SPJ
	// queries the rows produced before the trip are returned alongside the
	// error so callers can serve a tagged partial answer. Zero disables.
	MaxOutputRows int
	// TrackLineage enables per-row lineage for SPJ queries.
	TrackLineage bool
	// Parallelism is the number of workers for the data-parallel operators
	// (candidate filter scans, hash-join probe, projection). Zero means one
	// worker per CPU; values below 1 force the serial path. Results are
	// byte-identical for every setting: morsel outputs are merged in input
	// order, so parallelism changes wall-clock only, never answers.
	Parallelism int
	// UseRowEngine forces the legacy row-at-a-time operators instead of the
	// columnar/vectorized pipeline. The two paths produce byte-identical
	// results (proven by the differential fuzz harness); this switch exists
	// as an operational escape hatch and for differential testing.
	UseRowEngine bool
	// countOnly asks execution to skip output materialization when the
	// statement allows it (SPJ without DISTINCT/ORDER BY/LIMIT) and return
	// only the result cardinality in Result.Count. Set by CountContext.
	countOnly bool
}

const defaultMaxIntermediate = 2_000_000

// Execute runs stmt against db with lineage tracking enabled.
func Execute(db *table.Database, stmt *sqlparse.Select) (*Result, error) {
	return ExecuteWith(db, stmt, Options{TrackLineage: true})
}

// ExecuteContext runs stmt against db with lineage tracking enabled,
// honoring ctx cancellation and deadline through cooperative per-row checks.
func ExecuteContext(ctx context.Context, db *table.Database, stmt *sqlparse.Select) (*Result, error) {
	return ExecuteWithContext(ctx, db, stmt, Options{TrackLineage: true})
}

// ExecuteSQL parses and executes a SQL string.
func ExecuteSQL(db *table.Database, sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return Execute(db, stmt)
}

// Count executes stmt and returns only the number of result rows. Lineage
// tracking is disabled for speed.
func Count(db *table.Database, stmt *sqlparse.Select) (int, error) {
	return CountContext(context.Background(), db, stmt, Options{})
}

// CountContext is Count with a query context and explicit options, for
// callers (the shadow auditor) that need ground-truth cardinalities under a
// deadline. Lineage tracking is forced off.
func CountContext(ctx context.Context, db *table.Database, stmt *sqlparse.Select, opts Options) (int, error) {
	opts.TrackLineage = false
	opts.countOnly = true
	res, err := ExecuteWithContext(ctx, db, stmt, opts)
	if err != nil {
		return 0, err
	}
	if res.Table == nil {
		return res.Count, nil
	}
	return res.Table.NumRows(), nil
}

// joinKeyPair names, for one equi-join conjunct, the key column on the
// relation being joined in and the key column on the already-bound side.
type joinKeyPair struct{ relCol, boundBind binding }

// predClass classifies a WHERE/ON conjunct.
type predClass struct {
	expr sqlparse.Expr
	rels []int // sorted relation indices referenced
	// equi-join fields, valid when isEquiJoin:
	isEquiJoin bool
	leftBind   binding
	rightBind  binding
}

// ExecuteWith runs stmt against db with explicit options. When observability
// is enabled (see internal/obs), it records per-query latency keyed by the
// plan shape, per-operator execution counts, and per-phase timings.
func ExecuteWith(db *table.Database, stmt *sqlparse.Select, opts Options) (*Result, error) {
	return ExecuteWithContext(context.Background(), db, stmt, opts)
}

// ExecuteWithContext is ExecuteWith with a query context. Every operator
// (scan, join, project, aggregate) checks the context cooperatively every
// guardInterval rows, so cancellation and deadlines interrupt execution
// promptly; expired deadlines surface as errors wrapping ErrDeadline and
// cancellations as errors wrapping ErrCanceled. When an output row budget
// trips mid-projection, the partial rows are returned alongside the
// ErrRowBudget error.
func ExecuteWithContext(ctx context.Context, db *table.Database, stmt *sqlparse.Select, opts Options) (*Result, error) {
	g := newGuard(ctx, opts)
	// Trace propagation: when the caller's context carries a span (a traced
	// request from the serving layer or training pipeline), execution joins
	// its trace with an engine/execute span plus per-operator children.
	// Untraced calls — the scoring hot loop, plain ExecuteWith — pay only the
	// context lookup and the nil-receiver no-ops.
	span := obs.SpanFromContext(ctx).StartChild("engine/execute")
	t := startQueryTimer()
	if t != nil {
		recordWorkers(opts.workers())
	}
	// When both the timer and the span are off, the binder and predicates
	// are dropped immediately so the plan state does not stay live (and
	// GC-scannable) past execution.
	res, b, preds, err := executeWith(db, stmt, opts, t, g, span)
	if t != nil {
		t.finish(b, preds, stmt, err)
	}
	if span != nil {
		if b != nil {
			span.Annotate("plan", planShape(b, preds, stmt))
		}
		if res != nil {
			if res.Table != nil {
				span.Annotate("rows_out", res.Table.NumRows())
			} else {
				span.Annotate("rows_out", res.Count)
			}
		}
		if err != nil {
			markSpanOutcome(span, err)
		}
		span.End()
	}
	return res, err
}

// markSpanOutcome records err on span. Guard trips (deadline, row budget,
// cancellation) are expected control flow — the degradation ladder converts
// them into tagged degraded answers — so they land as guard_trip events that
// leave the trace's error status to the layer that decides the final outcome.
// Anything else is a genuine fault and marks the span errored.
func markSpanOutcome(span *obs.Span, err error) {
	if span == nil || err == nil {
		return
	}
	if kind := GuardKind(err); kind != "" {
		span.Annotate("guard", kind)
		span.Event("guard_trip", "kind", kind)
		return
	}
	span.MarkError(err.Error())
}

// executeWith is the untimed execution pipeline. It returns the binder and
// classified predicates so the caller can key metrics by plan shape.
func executeWith(db *table.Database, stmt *sqlparse.Select, opts Options, t *queryTimer, g *guard, span *obs.Span) (*Result, *binder, []predClass, error) {
	if opts.MaxIntermediateRows <= 0 {
		opts.MaxIntermediateRows = defaultMaxIntermediate
	}
	// An already-expired deadline or canceled context fails before any work.
	if err := g.poll(); err != nil {
		return nil, nil, nil, err
	}
	b, err := newBinder(db, stmt)
	if err != nil {
		return nil, nil, nil, err
	}
	// Bind every expression up front so resolution errors surface before
	// execution starts.
	for _, it := range stmt.Items {
		if err := b.bindExpr(it.Expr); err != nil {
			return nil, b, nil, err
		}
	}
	for _, j := range stmt.Joins {
		if err := b.bindExpr(j.On); err != nil {
			return nil, b, nil, err
		}
	}
	if err := b.bindExpr(stmt.Where); err != nil {
		return nil, b, nil, err
	}
	for _, g := range stmt.GroupBy {
		if err := b.bindExpr(g); err != nil {
			return nil, b, nil, err
		}
	}
	if err := b.bindExpr(stmt.Having); err != nil {
		return nil, b, nil, err
	}
	// ORDER BY expressions are not pre-bound: they may reference output
	// aliases rather than base columns, and orderKey resolves them lazily.

	preds, err := classify(b, stmt)
	if err != nil {
		return nil, b, nil, err
	}
	t.phase("plan")
	if !opts.UseRowEngine {
		res, err := executeColTail(b, stmt, preds, opts, t, g, span)
		return res, b, preds, err
	}
	res, err := executeRowTail(b, stmt, preds, opts, t, g, span)
	return res, b, preds, err
}

// executeRowTail is the legacy row-at-a-time pipeline after planning:
// scan/join, then aggregate or project, then finish. It remains the reference
// semantics the columnar path (executeColTail) is differentially tested
// against.
func executeRowTail(b *binder, stmt *sqlparse.Select, preds []predClass, opts Options, t *queryTimer, g *guard, span *obs.Span) (*Result, error) {
	joined, err := runJoins(b, preds, opts, g, span)
	if err != nil {
		return nil, err
	}
	t.phase("join")

	if stmt.HasAggregates() {
		aggSpan := span.StartChild("engine/aggregate")
		out, err := aggregate(b, stmt, joined, g)
		if err != nil {
			markSpanOutcome(aggSpan, err)
			aggSpan.End()
			return nil, err
		}
		aggSpan.Annotate("rows_out", out.NumRows())
		aggSpan.End()
		t.phase("aggregate")
		res := &Result{Table: out}
		res, err = finish(b, stmt, res, nil, true)
		t.phase("finish")
		return res, err
	}

	projSpan := span.StartChild("engine/project")
	out, lineage, err := project(b, stmt, joined, opts, g)
	if err != nil {
		markSpanOutcome(projSpan, err)
		if out != nil {
			projSpan.Annotate("rows_out", out.NumRows())
		}
		projSpan.End()
		// A tripped output budget still carries the rows produced so far;
		// surface them (un-finished) so callers can serve a tagged partial.
		if out != nil {
			return &Result{Table: out, Lineage: lineage}, err
		}
		return nil, err
	}
	projSpan.Annotate("rows_out", out.NumRows())
	projSpan.End()
	t.phase("project")
	res := &Result{Table: out, Lineage: lineage}
	res, err = finish(b, stmt, res, joined, false)
	t.phase("finish")
	return res, err
}

// classify splits WHERE and ON into per-relation filters, equi-joins and
// residual predicates.
func classify(b *binder, stmt *sqlparse.Select) ([]predClass, error) {
	var conjuncts []sqlparse.Expr
	conjuncts = append(conjuncts, sqlparse.Conjuncts(stmt.Where)...)
	for _, j := range stmt.Joins {
		conjuncts = append(conjuncts, sqlparse.Conjuncts(j.On)...)
	}
	preds := make([]predClass, 0, len(conjuncts))
	for _, c := range conjuncts {
		pc := predClass{expr: c}
		relSet := map[int]bool{}
		var walkErr error
		sqlparse.Walk(c, func(n sqlparse.Expr) {
			if ref, ok := n.(*sqlparse.ColumnRef); ok {
				bd, err := b.resolve(ref)
				if err != nil {
					if walkErr == nil {
						walkErr = err
					}
					return
				}
				relSet[bd.rel] = true
			}
		})
		if walkErr != nil {
			return nil, walkErr
		}
		for r := range relSet {
			pc.rels = append(pc.rels, r)
		}
		sort.Ints(pc.rels)
		// Detect "a.x = b.y" equi-joins.
		if bin, ok := c.(*sqlparse.Binary); ok && bin.Op == "=" && len(pc.rels) == 2 {
			lc, lok := bin.Left.(*sqlparse.ColumnRef)
			rc, rok := bin.Right.(*sqlparse.ColumnRef)
			if lok && rok {
				lb, _ := b.resolve(lc)
				rb, _ := b.resolve(rc)
				if lb.rel != rb.rel {
					pc.isEquiJoin = true
					pc.leftBind, pc.rightBind = lb, rb
				}
			}
		}
		preds = append(preds, pc)
	}
	return preds, nil
}

// runJoins executes the scan + join pipeline and returns joined rows. When
// span is a live trace span, scan and join phases attach child spans with
// per-relation and output row counts.
func runJoins(b *binder, preds []predClass, opts Options, g *guard, span *obs.Span) (out []joinedRow, err error) {
	n := len(b.tables)

	scanSpan := span.StartChild("engine/scan")
	candidates, err := scanRelations(b, preds, opts, g)
	if err != nil {
		markSpanOutcome(scanSpan, err)
		scanSpan.End()
		return nil, err
	}
	if scanSpan != nil {
		for rel := 0; rel < n; rel++ {
			scanSpan.Annotate("rows/"+b.refs[rel].Name(), len(candidates[rel]))
		}
	}
	scanSpan.End()

	joinSpan := span.StartChild("engine/join")
	defer func() {
		if err != nil {
			markSpanOutcome(joinSpan, err)
		} else {
			joinSpan.Annotate("rows_out", len(out))
		}
		joinSpan.End()
	}()

	// Left-deep joins in FROM order.
	current := make([]joinedRow, 0, len(candidates[0]))
	for _, ri := range candidates[0] {
		jr := make(joinedRow, n)
		for i := range jr {
			jr[i] = -1
		}
		jr[0] = ri
		current = append(current, jr)
	}

	bound := map[int]bool{0: true}
	for rel := 1; rel < n; rel++ {
		// Equi-join conjuncts connecting rel to already-bound relations.
		var joins []predClass
		for _, p := range preds {
			if !p.isEquiJoin {
				continue
			}
			a, c := p.leftBind.rel, p.rightBind.rel
			if (a == rel && bound[c]) || (c == rel && bound[a]) {
				joins = append(joins, p)
			}
		}
		next, err := joinStep(b, current, candidates[rel], rel, joins, opts, g)
		if err != nil {
			return nil, err
		}
		current = next
		bound[rel] = true

		// Residual predicates whose relations are all now bound and which
		// involve rel (so each residual applies exactly once).
		for _, p := range preds {
			if p.isEquiJoin || len(p.rels) < 2 {
				continue
			}
			if p.rels[len(p.rels)-1] != rel {
				continue
			}
			allBound := true
			for _, r := range p.rels {
				if !bound[r] {
					allBound = false
					break
				}
			}
			if !allBound {
				continue
			}
			filtered := current[:0]
			for _, jr := range current {
				if err := g.tick(1); err != nil {
					return nil, err
				}
				v, err := evalExpr(p.expr, evalEnv{b: b, row: jr})
				if err != nil {
					return nil, err
				}
				if !v.IsNull() && truthy(v) {
					filtered = append(filtered, jr)
				}
			}
			current = filtered
		}
	}
	return current, nil
}

// relFilters collects the per-relation filter expressions for rel: its
// single-relation conjuncts, plus (at relation 0) constant conjuncts, which
// are applied exactly once per row so errors (e.g. aggregates in WHERE)
// surface.
func relFilters(preds []predClass, rel int) []sqlparse.Expr {
	var filters []sqlparse.Expr
	for _, p := range preds {
		if len(p.rels) == 1 && p.rels[0] == rel {
			filters = append(filters, p.expr)
		}
		if len(p.rels) == 0 && rel == 0 {
			filters = append(filters, p.expr)
		}
	}
	return filters
}

// scanRelations produces the per-relation filtered candidate row lists (the
// scan phase of runJoins).
func scanRelations(b *binder, preds []predClass, opts Options, g *guard) ([][]int32, error) {
	n := len(b.tables)
	candidates := make([][]int32, n)
	for rel := 0; rel < n; rel++ {
		if faults.Active() {
			if err := faults.Inject(faults.PointEngineScan); err != nil {
				return nil, err
			}
		}
		keep, err := scanRelationRows(b, rel, relFilters(preds, rel), opts, g)
		if err != nil {
			return nil, err
		}
		candidates[rel] = keep
	}
	return candidates, nil
}

// scanRelationRows filters one relation's rows with per-row expression
// evaluation, returning kept row indices in row order. It is the reference
// scan used by the row engine and by the columnar scan whenever a filter does
// not compile to a vectorized kernel (keeping data-dependent error ordering
// identical).
func scanRelationRows(b *binder, rel int, filters []sqlparse.Expr, opts Options, g *guard) ([]int32, error) {
	rows := b.tables[rel].Rows
	if workers := opts.workers(); workers > 1 && len(rows) >= parallelMinRows {
		return scanFilterParallel(b, rel, filters, g, workers)
	}
	n := len(b.tables)
	keep := make([]int32, 0, len(rows))
	probe := make(joinedRow, n)
	for i := range probe {
		probe[i] = -1
	}
	for i := range rows {
		if err := g.tick(1); err != nil {
			return nil, err
		}
		probe[rel] = int32(i)
		ok := true
		for _, f := range filters {
			v, err := evalExpr(f, evalEnv{b: b, row: probe})
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !truthy(v) {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, int32(i))
		}
	}
	return keep, nil
}

// joinStep binds relation rel into the current intermediate rows, using a
// hash join when equi-join predicates connect it, or a cross product
// otherwise.
func joinStep(b *binder, current []joinedRow, cand []int32, rel int, joins []predClass, opts Options, g *guard) ([]joinedRow, error) {
	if faults.Active() {
		if err := faults.Inject(faults.PointEngineJoin); err != nil {
			return nil, err
		}
	}
	if len(joins) == 0 {
		// Cross product.
		if len(current)*len(cand) > opts.MaxIntermediateRows {
			return nil, fmt.Errorf("%w: cross product of %d x %d rows exceeds limit %d", ErrRowBudget, len(current), len(cand), opts.MaxIntermediateRows)
		}
		out := make([]joinedRow, 0, len(current)*len(cand))
		for _, jr := range current {
			for _, ri := range cand {
				if err := g.tick(1); err != nil {
					return nil, err
				}
				nr := make(joinedRow, len(jr))
				copy(nr, jr)
				nr[rel] = ri
				out = append(out, nr)
			}
		}
		return out, nil
	}

	// Key extraction: for each join predicate, the column on rel's side and
	// the column on the bound side.
	pairs := make([]joinKeyPair, len(joins))
	for i, p := range joins {
		if p.leftBind.rel == rel {
			pairs[i] = joinKeyPair{relCol: p.leftBind, boundBind: p.rightBind}
		} else {
			pairs[i] = joinKeyPair{relCol: p.rightBind, boundBind: p.leftBind}
		}
	}

	// Build hash table over rel's candidates. Keys are appended into one
	// reused byte buffer; the bytes are copied into a map key only once per
	// distinct key (the bucket is held by pointer), so the per-row string
	// allocation of Value.Key is gone from this path.
	build := make(map[string]*[]int32, len(cand))
	var kb []byte
	for _, ri := range cand {
		if err := g.tick(1); err != nil {
			return nil, err
		}
		kb = kb[:0]
		null := false
		for _, kp := range pairs {
			v := b.tables[rel].Rows[ri][kp.relCol.col]
			if v.IsNull() {
				null = true
				break
			}
			kb = v.AppendKey(kb)
			kb = append(kb, 0x1e)
		}
		if null {
			continue // NULL never joins
		}
		bucket := build[string(kb)]
		if bucket == nil {
			bucket = new([]int32)
			build[string(kb)] = bucket
		}
		*bucket = append(*bucket, ri)
	}

	// Probe phase: the build table is read-only from here, so the probe over
	// the (usually much larger) intermediate side fans out across workers.
	if workers := opts.workers(); workers > 1 && len(current) >= parallelMinRows {
		return probeParallel(b, current, rel, pairs, build, opts, g, workers)
	}

	out := make([]joinedRow, 0, len(current))
	for _, jr := range current {
		kb = kb[:0]
		null := false
		for _, kp := range pairs {
			ri := jr[kp.boundBind.rel]
			v := b.tables[kp.boundBind.rel].Rows[ri][kp.boundBind.col]
			if v.IsNull() {
				null = true
				break
			}
			kb = v.AppendKey(kb)
			kb = append(kb, 0x1e)
		}
		if null {
			continue
		}
		if bucket := build[string(kb)]; bucket != nil {
			for _, ri := range *bucket {
				if err := g.tick(1); err != nil {
					return nil, err
				}
				nr := make(joinedRow, len(jr))
				copy(nr, jr)
				nr[rel] = ri
				out = append(out, nr)
				if len(out) > opts.MaxIntermediateRows {
					return nil, fmt.Errorf("%w: join intermediate exceeds limit %d rows", ErrRowBudget, opts.MaxIntermediateRows)
				}
			}
		}
	}
	return out, nil
}

// project evaluates the SELECT list over joined rows (non-aggregate path).
// When the output row budget trips, the partial table built so far is
// returned together with the ErrRowBudget error.
func project(b *binder, stmt *sqlparse.Select, joined []joinedRow, opts Options, g *guard) (*table.Table, [][]table.RowID, error) {
	trackLineage := opts.TrackLineage
	if faults.Active() {
		if err := faults.Inject(faults.PointEngineProject); err != nil {
			return nil, nil, err
		}
	}
	var schema table.Schema
	var items []sqlparse.SelectItem
	if stmt.Star {
		for i, t := range b.tables {
			prefix := b.refs[i].Name()
			for _, c := range t.Schema {
				schema = append(schema, table.Column{Name: prefix + "." + c.Name, Kind: c.Kind})
			}
		}
	} else {
		items = stmt.Items
		for _, it := range items {
			name := it.Alias
			if name == "" {
				name = it.Expr.String()
			}
			schema = append(schema, table.Column{Name: name, Kind: inferKind(b, it.Expr)})
		}
	}

	// An output-row budget must return exactly the rows produced before the
	// trip, which is inherently serial; without one, projection fans out.
	if workers := opts.workers(); workers > 1 && len(joined) >= parallelMinRows && (g == nil || g.maxOutput <= 0) {
		return projectParallel(b, stmt, items, schema, joined, trackLineage, g, workers)
	}

	out := table.New("result", schema)
	var lineage [][]table.RowID
	if trackLineage {
		lineage = make([][]table.RowID, 0, len(joined))
	}
	for _, jr := range joined {
		if err := g.tick(1); err != nil {
			return nil, nil, err
		}
		if err := g.out(1); err != nil {
			return out, lineage, err
		}
		row, err := projectRow(b, stmt, items, schema, jr)
		if err != nil {
			return nil, nil, err
		}
		out.AppendRow(row)
		if trackLineage {
			lineage = append(lineage, lineageOf(b, jr))
		}
	}
	return out, lineage, nil
}

// projectRow materializes one output row from a joined base row.
func projectRow(b *binder, stmt *sqlparse.Select, items []sqlparse.SelectItem, schema table.Schema, jr joinedRow) (table.Row, error) {
	if stmt.Star {
		row := make(table.Row, 0, len(schema))
		for rel, t := range b.tables {
			row = append(row, t.Rows[jr[rel]]...)
		}
		return row, nil
	}
	row := make(table.Row, len(items))
	for i, it := range items {
		v, err := evalExpr(it.Expr, evalEnv{b: b, row: jr})
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// lineageOf records the base-table row of every relation behind one output
// row.
func lineageOf(b *binder, jr joinedRow) []table.RowID {
	ids := make([]table.RowID, len(b.tables))
	for rel := range b.tables {
		ids[rel] = table.RowID{Table: strings.ToLower(b.tables[rel].Name), Row: int(jr[rel])}
	}
	return ids
}

// inferKind guesses the output kind of an expression for schema purposes.
func inferKind(b *binder, e sqlparse.Expr) table.Kind {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return x.Value.Kind
	case *sqlparse.ColumnRef:
		if bd, err := b.resolve(x); err == nil {
			return b.tables[bd.rel].Schema[bd.col].Kind
		}
		return table.KindString
	case *sqlparse.Binary:
		switch x.Op {
		case "+", "-", "*", "%":
			lk, rk := inferKind(b, x.Left), inferKind(b, x.Right)
			if lk == table.KindInt && rk == table.KindInt {
				return table.KindInt
			}
			return table.KindFloat
		case "/":
			return table.KindFloat
		default:
			return table.KindBool
		}
	case *sqlparse.Unary:
		if x.Op == "-" {
			return inferKind(b, x.X)
		}
		return table.KindBool
	case *sqlparse.In, *sqlparse.Between, *sqlparse.Like, *sqlparse.IsNull:
		return table.KindBool
	case *sqlparse.Call:
		switch x.Name {
		case "COUNT":
			return table.KindInt
		case "AVG":
			return table.KindFloat
		default: // SUM/MIN/MAX follow the argument
			if x.Arg != nil {
				return inferKind(b, x.Arg)
			}
			return table.KindFloat
		}
	}
	return table.KindString
}

// finish applies DISTINCT, ORDER BY and LIMIT to a result.
func finish(b *binder, stmt *sqlparse.Select, res *Result, joined []joinedRow, isAgg bool) (*Result, error) {
	// DISTINCT. Row keys are built in one reused buffer; the map only copies
	// the bytes for keys seen the first time.
	if stmt.Distinct {
		seen := make(map[string]bool, res.Table.NumRows())
		keepRows := res.Table.Rows[:0]
		var keepLineage [][]table.RowID
		if res.Lineage != nil {
			keepLineage = res.Lineage[:0]
		}
		var keepJoined []joinedRow
		if joined != nil {
			keepJoined = joined[:0]
		}
		var kb []byte
		for i, r := range res.Table.Rows {
			kb = r.AppendKey(kb[:0])
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
			keepRows = append(keepRows, r)
			if res.Lineage != nil {
				keepLineage = append(keepLineage, res.Lineage[i])
			}
			if joined != nil {
				keepJoined = append(keepJoined, joined[i])
			}
		}
		res.Table.Rows = keepRows
		res.Lineage = keepLineage
		joined = keepJoined
	}

	// ORDER BY.
	if len(stmt.OrderBy) > 0 {
		idx := make([]int, res.Table.NumRows())
		for i := range idx {
			idx[i] = i
		}
		keys := make([][]table.Value, len(idx))
		for i := range idx {
			ks := make([]table.Value, len(stmt.OrderBy))
			for oi, o := range stmt.OrderBy {
				v, err := orderKey(b, stmt, res, joined, i, o.Expr, isAgg)
				if err != nil {
					return nil, err
				}
				ks[oi] = v
			}
			keys[i] = ks
		}
		sort.SliceStable(idx, func(a, c int) bool {
			for oi, o := range stmt.OrderBy {
				cmp := keys[idx[a]][oi].Compare(keys[idx[c]][oi])
				if cmp == 0 {
					continue
				}
				if o.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		newRows := make([]table.Row, len(idx))
		var newLineage [][]table.RowID
		if res.Lineage != nil {
			newLineage = make([][]table.RowID, len(idx))
		}
		for i, j := range idx {
			newRows[i] = res.Table.Rows[j]
			if res.Lineage != nil {
				newLineage[i] = res.Lineage[j]
			}
		}
		res.Table.Rows = newRows
		res.Lineage = newLineage
	}

	// LIMIT.
	if stmt.Limit >= 0 && res.Table.NumRows() > stmt.Limit {
		res.Table.Rows = res.Table.Rows[:stmt.Limit]
		if res.Lineage != nil {
			res.Lineage = res.Lineage[:stmt.Limit]
		}
	}
	return res, nil
}

// orderKey computes an ORDER BY key for output row i. For SPJ queries the
// expression is evaluated against the joined base row; for aggregates it must
// match an output column by alias or rendered text.
func orderKey(b *binder, stmt *sqlparse.Select, res *Result, joined []joinedRow, i int, e sqlparse.Expr, isAgg bool) (table.Value, error) {
	// Output-column match (alias or rendered expression) works for both
	// aggregate and plain queries.
	name := e.String()
	if col := res.Table.ColumnIndex(name); col >= 0 {
		return res.Table.Rows[i][col], nil
	}
	if c, ok := e.(*sqlparse.ColumnRef); ok {
		if col := res.Table.ColumnIndex(c.Column); col >= 0 {
			return res.Table.Rows[i][col], nil
		}
	}
	if isAgg || joined == nil {
		return table.Null, fmt.Errorf("engine: ORDER BY %s does not match an output column", name)
	}
	return evalExpr(e, evalEnv{b: b, row: joined[i]})
}
