package engine

import (
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// Vectorized predicate kernels. compileFilters translates a relation's filter
// expressions into kernels that run tight typed loops over the table's column
// vectors, filtering a selection vector in place. Compilation is
// all-or-nothing per relation: if any filter cannot be compiled (mixed-kind
// column, non-literal comparand, an expression form with data-dependent
// evaluation errors), the whole relation falls back to per-row evalExpr so
// error ordering stays byte-identical to the row engine.
//
// Compiled kernels are infallible by construction — every expression form
// that can raise an evaluation error is rejected at compile time — which is
// what makes the selection-vector composition below (AND chains, OR unions)
// semantically equivalent to the row engine's short-circuit evaluation: with
// no errors possible, evaluation order affects nothing but speed.
//
// Semantics contract: a row passes a filter iff the row engine's evalExpr
// would return a non-NULL truthy value for it. NULL comparisons fail, kind
// classes follow Value.Compare/Value.Equal (numeric pairs compare through
// float64; mismatched non-numeric kinds order by Kind ordinal), and
// dictionary kernels evaluate string predicates once per distinct value.
type kernel struct {
	// sel filters the selection in place, returning the surviving prefix.
	// Selections are ascending row indices; kernels preserve order.
	sel func(sel []int32) []int32
	// prune reports whether zone chunk m (rows [m*ZoneChunkRows, ...)) can be
	// skipped because no row in it can pass. nil disables pruning.
	prune func(m int) bool
	// constFalse marks a kernel that passes no row at all (every chunk of
	// every morsel prunes).
	constFalse bool
}

// compileFilters compiles every filter or reports ok=false (fall back to
// per-row evaluation for the whole relation).
func compileFilters(b *binder, rel int, cs *table.ColumnSet, filters []sqlparse.Expr) ([]kernel, bool) {
	ks := make([]kernel, 0, len(filters))
	for _, f := range filters {
		k, ok := compileExpr(b, rel, cs, f, false)
		if !ok {
			return nil, false
		}
		ks = append(ks, k)
	}
	return ks, true
}

// pruneMorsel reports whether morsel m is skippable: some kernel proves no
// row of the chunk passes its filter (filters are conjunctive).
func pruneMorsel(ks []kernel, m int) bool {
	for i := range ks {
		if ks[i].constFalse {
			return true
		}
		if ks[i].prune != nil && ks[i].prune(m) {
			return true
		}
	}
	return false
}

func hasColumnRef(e sqlparse.Expr) bool {
	found := false
	sqlparse.Walk(e, func(n sqlparse.Expr) {
		if _, ok := n.(*sqlparse.ColumnRef); ok {
			found = true
		}
	})
	return found
}

// compileExpr compiles one predicate expression. negate means the expression
// appears under an odd number of NOTs; it is folded into the compiled form
// (NOT(a < b) compiles as a >= b, which matches the row engine exactly
// because NULL operands fail both the original and the complement).
func compileExpr(b *binder, rel int, cs *table.ColumnSet, e sqlparse.Expr, negate bool) (kernel, bool) {
	// Constant subexpression: evaluate once. The row engine evaluates it per
	// row with an identical outcome; expressions that would error per row
	// (e.g. aggregate calls in WHERE) fail compilation and fall back.
	if !hasColumnRef(e) {
		v, err := evalExpr(e, evalEnv{b: b})
		if err != nil {
			return kernel{}, false
		}
		pass := !v.IsNull() && truthy(v)
		if negate {
			// NOT NULL is NULL (fails); NOT x flips truthiness.
			pass = !v.IsNull() && !truthy(v)
		}
		if pass {
			return passAllKernel(), true
		}
		return kernel{constFalse: true, sel: emptySel}, true
	}

	switch x := e.(type) {
	case *sqlparse.Unary:
		if x.Op == "NOT" {
			return compileExpr(b, rel, cs, x.X, !negate)
		}
		return kernel{}, false
	case *sqlparse.Binary:
		switch x.Op {
		case "AND":
			if negate {
				return kernel{}, false
			}
			l, ok := compileExpr(b, rel, cs, x.Left, false)
			if !ok {
				return kernel{}, false
			}
			r, ok := compileExpr(b, rel, cs, x.Right, false)
			if !ok {
				return kernel{}, false
			}
			return andKernel(l, r), true
		case "OR":
			if negate {
				return kernel{}, false
			}
			l, ok := compileExpr(b, rel, cs, x.Left, false)
			if !ok {
				return kernel{}, false
			}
			r, ok := compileExpr(b, rel, cs, x.Right, false)
			if !ok {
				return kernel{}, false
			}
			return orKernel(l, r), true
		case "=", "<>", "<", "<=", ">", ">=":
			op := x.Op
			col, lit, ok := splitCmp(b, rel, x)
			if !ok {
				return kernel{}, false
			}
			if col.flipped {
				op = flipOp(op)
			}
			if negate {
				op = complementOp(op)
			}
			return compileCmp(cs, col.col, lit, op)
		default:
			return kernel{}, false
		}
	case *sqlparse.ColumnRef:
		// Bare column as predicate: pass iff non-NULL and truthy.
		ci, ok := relColumn(b, rel, x, cs)
		if !ok {
			return kernel{}, false
		}
		return truthyKernel(&cs.Cols[ci], negate), true
	case *sqlparse.In:
		ref, ok := x.X.(*sqlparse.ColumnRef)
		if !ok {
			return kernel{}, false
		}
		ci, ok := relColumn(b, rel, ref, cs)
		if !ok {
			return kernel{}, false
		}
		items := make([]table.Value, 0, len(x.List))
		for _, item := range x.List {
			lit, ok := item.(*sqlparse.Literal)
			if !ok {
				return kernel{}, false
			}
			items = append(items, lit.Value)
		}
		return compileIn(&cs.Cols[ci], items, x.Not != negate)
	case *sqlparse.Between:
		ref, ok := x.X.(*sqlparse.ColumnRef)
		if !ok {
			return kernel{}, false
		}
		ci, ok := relColumn(b, rel, ref, cs)
		if !ok {
			return kernel{}, false
		}
		lo, lok := x.Lo.(*sqlparse.Literal)
		hi, hok := x.Hi.(*sqlparse.Literal)
		if !lok || !hok {
			return kernel{}, false
		}
		return compileBetween(&cs.Cols[ci], lo.Value, hi.Value, x.Not != negate)
	case *sqlparse.Like:
		ref, ok := x.X.(*sqlparse.ColumnRef)
		if !ok {
			return kernel{}, false
		}
		ci, ok := relColumn(b, rel, ref, cs)
		if !ok {
			return kernel{}, false
		}
		c := &cs.Cols[ci]
		if c.Kind != table.KindString {
			// LIKE on non-string columns stringifies per row; leave it to the
			// row engine.
			return kernel{}, false
		}
		re, err := likeRegexp(x.Pattern)
		if err != nil {
			// Bad pattern: the row engine errors per evaluated row; fall back
			// so the error surfaces identically.
			return kernel{}, false
		}
		not := x.Not != negate
		mask := make([]bool, c.Dict.Len())
		for i, s := range c.Dict.Strs {
			mask[i] = re.MatchString(s) != not
		}
		return maskKernel(c, mask), true
	case *sqlparse.IsNull:
		ref, ok := x.X.(*sqlparse.ColumnRef)
		if !ok {
			return kernel{}, false
		}
		ci, ok := relColumn(b, rel, ref, cs)
		if !ok {
			return kernel{}, false
		}
		return isNullKernel(&cs.Cols[ci], x.Not != negate), true
	}
	return kernel{}, false
}

// splitCmp extracts the (column, literal) operands of a comparison on rel.
type cmpOperand struct {
	col     int
	flipped bool // literal was on the left
}

func splitCmp(b *binder, rel int, x *sqlparse.Binary) (cmpOperand, *sqlparse.Literal, bool) {
	if ref, ok := x.Left.(*sqlparse.ColumnRef); ok {
		if lit, ok := x.Right.(*sqlparse.Literal); ok {
			if ci, ok := relColumnRaw(b, rel, ref); ok {
				return cmpOperand{col: ci}, lit, true
			}
		}
	}
	if ref, ok := x.Right.(*sqlparse.ColumnRef); ok {
		if lit, ok := x.Left.(*sqlparse.Literal); ok {
			if ci, ok := relColumnRaw(b, rel, ref); ok {
				return cmpOperand{col: ci, flipped: true}, lit, true
			}
		}
	}
	return cmpOperand{}, nil, false
}

// relColumnRaw resolves ref to a column index on rel.
func relColumnRaw(b *binder, rel int, ref *sqlparse.ColumnRef) (int, bool) {
	bd, err := b.resolve(ref)
	if err != nil || bd.rel != rel {
		return 0, false
	}
	return bd.col, true
}

// relColumn additionally requires the column to be vectorizable (not Mixed).
func relColumn(b *binder, rel int, ref *sqlparse.ColumnRef, cs *table.ColumnSet) (int, bool) {
	ci, ok := relColumnRaw(b, rel, ref)
	if !ok || cs.Cols[ci].Mixed {
		return 0, false
	}
	return ci, true
}

// flipOp mirrors a comparison for a swapped operand order (5 < x ⇒ x > 5).
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// complementOp negates a comparison over non-NULL operands.
func complementOp(op string) string {
	switch op {
	case "=":
		return "<>"
	case "<>":
		return "="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return op
}

// cmpSatisfied replicates the row engine's comparison outcome for non-NULL
// values (Equal for =/<>, Compare otherwise).
func cmpSatisfied(v, o table.Value, op string) bool {
	switch op {
	case "=":
		return v.Equal(o)
	case "<>":
		return !v.Equal(o)
	}
	cmp := v.Compare(o)
	switch op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	return false
}

func emptySel(sel []int32) []int32 { return sel[:0] }

// passAllKernel passes every row (a constant-true filter).
func passAllKernel() kernel {
	return kernel{sel: func(sel []int32) []int32 { return sel }}
}

// passNonNullKernel passes every non-NULL row of c (a comparison whose
// outcome depends only on kind ordering, e.g. intcol < 'text').
func passNonNullKernel(c *table.ColumnData) kernel {
	nulls := c.Nulls
	zones := c.Zones
	return kernel{
		sel: func(sel []int32) []int32 {
			if nulls == nil {
				return sel
			}
			out := sel[:0]
			for _, i := range sel {
				if !nulls.Get(int(i)) {
					out = append(out, i)
				}
			}
			return out
		},
		prune: func(m int) bool { return !zones[m].HasValue },
	}
}

// compileCmp builds the kernel for <col> <op> <lit>.
func compileCmp(cs *table.ColumnSet, ci int, lit *sqlparse.Literal, op string) (kernel, bool) {
	c := &cs.Cols[ci]
	if c.Mixed {
		return kernel{}, false
	}
	lv := lit.Value
	if lv.IsNull() {
		// cmp NULL is NULL: nothing passes.
		return kernel{constFalse: true, sel: emptySel}, true
	}
	switch c.Kind {
	case table.KindInt, table.KindFloat:
		if lv.IsNumeric() {
			return numericCmpKernel(c, op, lv.AsFloat()), true
		}
		// Mixed kind classes: the outcome is the same for every non-NULL
		// value of the column (Compare orders by Kind; Equal is false).
		rep := table.NewInt(0)
		if c.Kind == table.KindFloat {
			rep = table.NewFloat(0.5)
		}
		if cmpSatisfied(rep, lv, op) {
			return passNonNullKernel(c), true
		}
		return kernel{constFalse: true, sel: emptySel}, true
	case table.KindString:
		mask := make([]bool, c.Dict.Len())
		for i, s := range c.Dict.Strs {
			mask[i] = cmpSatisfied(table.NewString(s), lv, op)
		}
		return maskKernel(c, mask), true
	case table.KindBool:
		var mask2 [2]bool
		mask2[0] = cmpSatisfied(table.NewBool(false), lv, op)
		mask2[1] = cmpSatisfied(table.NewBool(true), lv, op)
		return boolMaskKernel(c, mask2), true
	}
	return kernel{}, false
}

// numericCmpKernel compares an int or float column against a numeric literal
// through float64, exactly like Value.Compare on numeric pairs.
func numericCmpKernel(c *table.ColumnData, op string, lit float64) kernel {
	nulls := c.Nulls
	zones := c.Zones
	var pass func(v float64) bool
	var prune func(m int) bool
	switch op {
	case "=":
		pass = func(v float64) bool { return v == lit }
		prune = func(m int) bool { z := &zones[m]; return !z.HasValue || lit < z.Min || lit > z.Max }
	case "<>":
		pass = func(v float64) bool { return v != lit }
		prune = func(m int) bool { z := &zones[m]; return !z.HasValue || (z.Min == lit && z.Max == lit) }
	case "<":
		pass = func(v float64) bool { return v < lit }
		prune = func(m int) bool { z := &zones[m]; return !z.HasValue || z.Min >= lit }
	case "<=":
		// Not v <= lit: Value.Compare returns 0 for NaN operands, so the row
		// engine passes NaN here (cmp <= 0). !(v > lit) reproduces that.
		pass = func(v float64) bool { return !(v > lit) }
		prune = func(m int) bool { z := &zones[m]; return !z.HasValue || z.Min > lit }
	case ">":
		pass = func(v float64) bool { return v > lit }
		prune = func(m int) bool { z := &zones[m]; return !z.HasValue || z.Max <= lit }
	case ">=":
		pass = func(v float64) bool { return !(v < lit) } // NaN passes, as in Compare
		prune = func(m int) bool { z := &zones[m]; return !z.HasValue || z.Max < lit }
	default:
		return kernel{}
	}
	k := kernel{prune: prune}
	if c.Kind == table.KindInt {
		vals := c.Ints
		if nulls == nil {
			k.sel = func(sel []int32) []int32 {
				out := sel[:0]
				for _, i := range sel {
					if pass(float64(vals[i])) {
						out = append(out, i)
					}
				}
				return out
			}
		} else {
			k.sel = func(sel []int32) []int32 {
				out := sel[:0]
				for _, i := range sel {
					if !nulls.Get(int(i)) && pass(float64(vals[i])) {
						out = append(out, i)
					}
				}
				return out
			}
		}
	} else {
		vals := c.Floats
		if nulls == nil {
			k.sel = func(sel []int32) []int32 {
				out := sel[:0]
				for _, i := range sel {
					if pass(vals[i]) {
						out = append(out, i)
					}
				}
				return out
			}
		} else {
			k.sel = func(sel []int32) []int32 {
				out := sel[:0]
				for _, i := range sel {
					if !nulls.Get(int(i)) && pass(vals[i]) {
						out = append(out, i)
					}
				}
				return out
			}
		}
	}
	return k
}

// maskKernel passes non-NULL rows of a dictionary column whose code is set in
// mask. An all-false mask is constant-false.
func maskKernel(c *table.ColumnData, mask []bool) kernel {
	any := false
	for _, m := range mask {
		if m {
			any = true
			break
		}
	}
	if !any {
		return kernel{constFalse: true, sel: emptySel}
	}
	codes := c.Codes
	nulls := c.Nulls
	zones := c.Zones
	return kernel{
		sel: func(sel []int32) []int32 {
			out := sel[:0]
			if nulls == nil {
				for _, i := range sel {
					if mask[codes[i]] {
						out = append(out, i)
					}
				}
				return out
			}
			for _, i := range sel {
				if !nulls.Get(int(i)) && mask[codes[i]] {
					out = append(out, i)
				}
			}
			return out
		},
		prune: func(m int) bool { return !zones[m].HasValue },
	}
}

// boolMaskKernel is maskKernel for boolean columns (mask2[0]=false cells,
// mask2[1]=true cells).
func boolMaskKernel(c *table.ColumnData, mask2 [2]bool) kernel {
	if !mask2[0] && !mask2[1] {
		return kernel{constFalse: true, sel: emptySel}
	}
	vals := c.Bools
	nulls := c.Nulls
	zones := c.Zones
	return kernel{
		sel: func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				idx := 0
				if vals[i] {
					idx = 1
				}
				if mask2[idx] {
					out = append(out, i)
				}
			}
			return out
		},
		prune: func(m int) bool { return !zones[m].HasValue },
	}
}

// truthyKernel passes rows whose value is non-NULL and truthy (or falsy,
// when negated): the bare-column-as-predicate form.
func truthyKernel(c *table.ColumnData, negate bool) kernel {
	nulls := c.Nulls
	zones := c.Zones
	switch c.Kind {
	case table.KindInt:
		vals := c.Ints
		k := kernel{sel: func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if (vals[i] != 0) != negate {
					out = append(out, i)
				}
			}
			return out
		}}
		if negate {
			k.prune = func(m int) bool { z := &zones[m]; return !z.HasValue || z.Min > 0 || z.Max < 0 }
		} else {
			k.prune = func(m int) bool { z := &zones[m]; return !z.HasValue || (z.Min == 0 && z.Max == 0) }
		}
		return k
	case table.KindFloat:
		vals := c.Floats
		k := kernel{sel: func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if (vals[i] != 0) != negate {
					out = append(out, i)
				}
			}
			return out
		}}
		if negate {
			k.prune = func(m int) bool { z := &zones[m]; return !z.HasValue || z.Min > 0 || z.Max < 0 }
		} else {
			k.prune = func(m int) bool { z := &zones[m]; return !z.HasValue || (z.Min == 0 && z.Max == 0) }
		}
		return k
	case table.KindString:
		mask := make([]bool, c.Dict.Len())
		for i, s := range c.Dict.Strs {
			mask[i] = (s != "") != negate
		}
		return maskKernel(c, mask)
	case table.KindBool:
		return boolMaskKernel(c, [2]bool{negate, !negate})
	}
	return kernel{}
}

// isNullKernel implements IS NULL (not=false) and IS NOT NULL (not=true).
func isNullKernel(c *table.ColumnData, not bool) kernel {
	nulls := c.Nulls
	zones := c.Zones
	if not {
		return kernel{
			sel: func(sel []int32) []int32 {
				if nulls == nil {
					return sel
				}
				out := sel[:0]
				for _, i := range sel {
					if !nulls.Get(int(i)) {
						out = append(out, i)
					}
				}
				return out
			},
			prune: func(m int) bool { return !zones[m].HasValue },
		}
	}
	if nulls == nil {
		return kernel{constFalse: true, sel: emptySel}
	}
	return kernel{
		sel: func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if nulls.Get(int(i)) {
					out = append(out, i)
				}
			}
			return out
		},
		prune: func(m int) bool { return !zones[m].HasNull },
	}
}

// compileIn builds the membership kernel for <col> [NOT] IN (literals...).
func compileIn(c *table.ColumnData, items []table.Value, not bool) (kernel, bool) {
	switch c.Kind {
	case table.KindInt, table.KindFloat:
		// Only numeric items can equal a numeric cell (Value.Equal).
		var members []float64
		for _, it := range items {
			if it.IsNumeric() {
				members = append(members, it.AsFloat())
			}
		}
		return numericInKernel(c, members, not), true
	case table.KindString:
		mask := make([]bool, c.Dict.Len())
		for ci, s := range c.Dict.Strs {
			member := false
			sv := table.NewString(s)
			for _, it := range items {
				if sv.Equal(it) {
					member = true
					break
				}
			}
			mask[ci] = member != not
		}
		return maskKernel(c, mask), true
	case table.KindBool:
		var mask2 [2]bool
		for bi, bv := range []table.Value{table.NewBool(false), table.NewBool(true)} {
			member := false
			for _, it := range items {
				if bv.Equal(it) {
					member = true
					break
				}
			}
			mask2[bi] = member != not
		}
		return boolMaskKernel(c, mask2), true
	}
	return kernel{}, false
}

func numericInKernel(c *table.ColumnData, members []float64, not bool) kernel {
	if len(members) == 0 {
		if !not {
			return kernel{constFalse: true, sel: emptySel}
		}
		return passNonNullKernel(c)
	}
	nulls := c.Nulls
	zones := c.Zones
	member := func(v float64) bool {
		for _, m := range members {
			if v == m {
				return true
			}
		}
		return false
	}
	k := kernel{}
	if not {
		k.prune = func(m int) bool { return !zones[m].HasValue }
	} else {
		k.prune = func(m int) bool {
			z := &zones[m]
			if !z.HasValue {
				return true
			}
			for _, mv := range members {
				if mv >= z.Min && mv <= z.Max {
					return false
				}
			}
			return true
		}
	}
	test := func(v float64) bool { return member(v) != not }
	if c.Kind == table.KindInt {
		vals := c.Ints
		k.sel = func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if test(float64(vals[i])) {
					out = append(out, i)
				}
			}
			return out
		}
	} else {
		vals := c.Floats
		k.sel = func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if test(vals[i]) {
					out = append(out, i)
				}
			}
			return out
		}
	}
	return k
}

// compileBetween builds the kernel for <col> [NOT] BETWEEN lo AND hi.
func compileBetween(c *table.ColumnData, lo, hi table.Value, not bool) (kernel, bool) {
	if lo.IsNull() || hi.IsNull() {
		// BETWEEN with a NULL bound is NULL for every row.
		return kernel{constFalse: true, sel: emptySel}, true
	}
	switch c.Kind {
	case table.KindInt, table.KindFloat:
		if !lo.IsNumeric() || !hi.IsNumeric() {
			// Kind-mismatched bounds have constant Compare signs; rare enough
			// to leave to the row engine.
			return kernel{}, false
		}
		return numericBetweenKernel(c, lo.AsFloat(), hi.AsFloat(), not), true
	case table.KindString:
		mask := make([]bool, c.Dict.Len())
		for ci, s := range c.Dict.Strs {
			sv := table.NewString(s)
			in := sv.Compare(lo) >= 0 && sv.Compare(hi) <= 0
			mask[ci] = in != not
		}
		return maskKernel(c, mask), true
	}
	return kernel{}, false
}

func numericBetweenKernel(c *table.ColumnData, lo, hi float64, not bool) kernel {
	nulls := c.Nulls
	zones := c.Zones
	k := kernel{}
	if not {
		k.prune = func(m int) bool {
			z := &zones[m]
			return !z.HasValue || (z.Min >= lo && z.Max <= hi)
		}
	} else {
		k.prune = func(m int) bool {
			z := &zones[m]
			return !z.HasValue || z.Max < lo || z.Min > hi
		}
	}
	// The row engine tests Compare(v,lo) >= 0 && Compare(v,hi) <= 0, and
	// Compare returns 0 for NaN operands — so NaN is BETWEEN everything.
	// !(v < lo) && !(v > hi) reproduces that exactly.
	test := func(v float64) bool { return (!(v < lo) && !(v > hi)) != not }
	if c.Kind == table.KindInt {
		vals := c.Ints
		k.sel = func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if test(float64(vals[i])) {
					out = append(out, i)
				}
			}
			return out
		}
	} else {
		vals := c.Floats
		k.sel = func(sel []int32) []int32 {
			out := sel[:0]
			for _, i := range sel {
				if nulls != nil && nulls.Get(int(i)) {
					continue
				}
				if test(vals[i]) {
					out = append(out, i)
				}
			}
			return out
		}
	}
	return k
}

// andKernel chains two kernels: r sees only l's survivors, mirroring the row
// engine's short-circuit AND (safe because kernels cannot error).
func andKernel(l, r kernel) kernel {
	k := kernel{constFalse: l.constFalse || r.constFalse}
	k.sel = func(sel []int32) []int32 {
		sel = l.sel(sel)
		if len(sel) == 0 {
			return sel
		}
		return r.sel(sel)
	}
	switch {
	case l.prune != nil && r.prune != nil:
		lp, rp := l.prune, r.prune
		k.prune = func(m int) bool { return lp(m) || rp(m) }
	case l.prune != nil:
		k.prune = l.prune
	case r.prune != nil:
		k.prune = r.prune
	}
	return k
}

// orKernel unions two kernels' pass sets over the incoming selection,
// preserving ascending order: pass iff l passes or r passes.
func orKernel(l, r kernel) kernel {
	k := kernel{constFalse: l.constFalse && r.constFalse}
	k.sel = func(sel []int32) []int32 {
		lsel := append([]int32(nil), sel...)
		lout := l.sel(lsel)
		// Complement: rows of sel not passed by l (both ascending).
		comp := make([]int32, 0, len(sel)-len(lout))
		j := 0
		for _, i := range sel {
			if j < len(lout) && lout[j] == i {
				j++
				continue
			}
			comp = append(comp, i)
		}
		rout := r.sel(comp)
		// Merge the two disjoint ascending sets back into sel.
		out := sel[:0]
		a, c := 0, 0
		for a < len(lout) && c < len(rout) {
			if lout[a] < rout[c] {
				out = append(out, lout[a])
				a++
			} else {
				out = append(out, rout[c])
				c++
			}
		}
		out = append(out, lout[a:]...)
		out = append(out, rout[c:]...)
		return out
	}
	if l.prune != nil && r.prune != nil {
		lp, rp := l.prune, r.prune
		k.prune = func(m int) bool { return lp(m) && rp(m) }
	}
	return k
}
