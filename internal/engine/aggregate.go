package engine

import (
	"fmt"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// aggState accumulates one aggregate function over a group. argBind, when
// non-nil, is the resolved binding of a plain column-reference argument, so
// accumulation reads the column directly instead of re-interpreting the
// expression per row.
type aggState struct {
	call    *sqlparse.Call
	argBind *binding
	count   int64
	sum     float64
	min     table.Value
	max     table.Value
	seen    bool
}

func (a *aggState) add(env evalEnv) error {
	if a.call.Star {
		a.count++
		return nil
	}
	var v table.Value
	if a.argBind != nil {
		v = env.value(*a.argBind)
	} else {
		var err error
		v, err = evalExpr(a.call.Arg, env)
		if err != nil {
			return err
		}
	}
	if v.IsNull() {
		return nil
	}
	a.count++
	a.sum += v.AsFloat()
	if !a.seen || v.Compare(a.min) < 0 {
		a.min = v
	}
	if !a.seen || v.Compare(a.max) > 0 {
		a.max = v
	}
	a.seen = true
	return nil
}

func (a *aggState) value() table.Value {
	switch a.call.Name {
	case "COUNT":
		return table.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return table.Null
		}
		return table.NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return table.Null
		}
		return table.NewFloat(a.sum / float64(a.count))
	case "MIN":
		if !a.seen {
			return table.Null
		}
		return a.min
	case "MAX":
		if !a.seen {
			return table.Null
		}
		return a.max
	default:
		return table.Null
	}
}

// group holds the accumulators and a representative tuple environment for
// one grouping key. hasRep is false only for the synthetic empty global
// group.
type group struct {
	rep    evalEnv
	hasRep bool
	aggs   []*aggState
}

// collectAggCalls gathers every aggregate call in the SELECT list and HAVING
// (in first-appearance order) and resolves plain column-reference arguments
// once, shared by the row and columnar aggregation paths.
func collectAggCalls(b *binder, stmt *sqlparse.Select) ([]*sqlparse.Call, map[*sqlparse.Call]int) {
	var calls []*sqlparse.Call
	callIndex := map[*sqlparse.Call]int{}
	collect := func(e sqlparse.Expr) {
		sqlparse.Walk(e, func(n sqlparse.Expr) {
			if c, ok := n.(*sqlparse.Call); ok {
				if _, dup := callIndex[c]; !dup {
					callIndex[c] = len(calls)
					calls = append(calls, c)
				}
			}
		})
	}
	for _, it := range stmt.Items {
		collect(it.Expr)
	}
	collect(stmt.Having)
	return calls, callIndex
}

// newAggStates builds one accumulator per call, resolving column-reference
// arguments to direct bindings where possible.
func newAggStates(b *binder, calls []*sqlparse.Call) []*aggState {
	aggs := make([]*aggState, len(calls))
	for i, c := range calls {
		a := &aggState{call: c}
		if !c.Star {
			if ref, ok := c.Arg.(*sqlparse.ColumnRef); ok {
				if bd, err := b.resolve(ref); err == nil {
					a.argBind = &bd
				}
			}
		}
		aggs[i] = a
	}
	return aggs
}

// aggregate executes the grouping/aggregation path of a SELECT.
func aggregate(b *binder, stmt *sqlparse.Select, joined []joinedRow, g *guard) (*table.Table, error) {
	if stmt.Star {
		return nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregates")
	}

	// Collect every aggregate call appearing in the SELECT list and HAVING.
	calls, callIndex := collectAggCalls(b, stmt)

	// Group rows by the GROUP BY key, built in one reused byte buffer (the
	// map copies it only when a new group is created).
	groups := map[string]*group{}
	var order []*group
	var kb []byte
	for _, jr := range joined {
		if err := g.tick(1); err != nil {
			return nil, err
		}
		env := evalEnv{b: b, row: jr}
		kb = kb[:0]
		for _, ge := range stmt.GroupBy {
			v, err := evalExpr(ge, env)
			if err != nil {
				return nil, err
			}
			kb = v.AppendKey(kb)
			kb = append(kb, 0x1e)
		}
		gr := groups[string(kb)]
		if gr == nil {
			gr = &group{rep: env, hasRep: true, aggs: newAggStates(b, calls)}
			groups[string(kb)] = gr
			order = append(order, gr)
		}
		for _, a := range gr.aggs {
			if err := a.add(env); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregation over an empty input still yields one row
	// (COUNT(*) = 0 and friends).
	if len(stmt.GroupBy) == 0 && len(order) == 0 {
		order = append(order, &group{aggs: newAggStates(b, calls)})
	}
	return emitAggRows(b, stmt, order, callIndex, g)
}

// emitAggRows materializes the output table from groups in first-appearance
// order, applying HAVING and the output-row budget. Shared by the row and
// columnar aggregation paths, so their results are identical by construction.
func emitAggRows(b *binder, stmt *sqlparse.Select, order []*group, callIndex map[*sqlparse.Call]int, g *guard) (*table.Table, error) {
	schema := make(table.Schema, len(stmt.Items))
	for i, it := range stmt.Items {
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		schema[i] = table.Column{Name: name, Kind: inferKind(b, it.Expr)}
	}
	out := table.New("result", schema)

	for _, gr := range order {
		if stmt.Having != nil {
			v, err := evalAggExpr(b, stmt.Having, gr, callIndex)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !truthy(v) {
				continue
			}
		}
		if err := g.out(1); err != nil {
			return nil, err
		}
		row := make(table.Row, len(stmt.Items))
		for i, it := range stmt.Items {
			v, err := evalAggExpr(b, it.Expr, gr, callIndex)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.AppendRow(row)
	}
	return out, nil
}

// aggregateCol is the columnar grouping/aggregation path. Grouping keys for
// plain column references over clean (non-Mixed) columns use fixed-size typed
// keys (the joinKey scheme, with NULL as a first-class tagNull key); anything
// else falls back to the row path's byte keys. Accumulation and output reuse
// the row path's machinery, so results match it byte for byte.
func aggregateCol(b *binder, stmt *sqlparse.Select, jb *joinedBatch, g *guard) (*table.Table, error) {
	if stmt.Star {
		return nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregates")
	}
	calls, callIndex := collectAggCalls(b, stmt)

	type fastKeyer struct {
		col []int32
		key func(int32) joinKey
	}
	var fks []fastKeyer
	fast := len(stmt.GroupBy) <= maxFastJoinPairs
	for _, ge := range stmt.GroupBy {
		if !fast {
			break
		}
		ref, ok := ge.(*sqlparse.ColumnRef)
		if !ok {
			fast = false
			break
		}
		bd, err := b.resolve(ref)
		if err != nil || jb.cols[bd.rel] == nil {
			fast = false
			break
		}
		c := &b.tables[bd.rel].Columns().Cols[bd.col]
		if c.Mixed {
			fast = false
			break
		}
		fks = append(fks, fastKeyer{col: jb.cols[bd.rel], key: columnGroupKeyer(c)})
	}

	var order []*group
	env := evalEnv{b: b, batch: jb}
	if fast {
		groups := make(map[joinKeyN]*group)
		for idx := 0; idx < jb.n; idx++ {
			if err := g.tick(1); err != nil {
				return nil, err
			}
			env.idx = idx
			var kn joinKeyN
			for pi := range fks {
				kn.k[pi] = fks[pi].key(fks[pi].col[idx])
			}
			gr := groups[kn]
			if gr == nil {
				gr = &group{rep: env, hasRep: true, aggs: newAggStates(b, calls)}
				groups[kn] = gr
				order = append(order, gr)
			}
			for _, a := range gr.aggs {
				if err := a.add(env); err != nil {
					return nil, err
				}
			}
		}
	} else {
		groups := map[string]*group{}
		var kb []byte
		for idx := 0; idx < jb.n; idx++ {
			if err := g.tick(1); err != nil {
				return nil, err
			}
			env.idx = idx
			kb = kb[:0]
			for _, ge := range stmt.GroupBy {
				v, err := evalExpr(ge, env)
				if err != nil {
					return nil, err
				}
				kb = v.AppendKey(kb)
				kb = append(kb, 0x1e)
			}
			gr := groups[string(kb)]
			if gr == nil {
				gr = &group{rep: env, hasRep: true, aggs: newAggStates(b, calls)}
				groups[string(kb)] = gr
				order = append(order, gr)
			}
			for _, a := range gr.aggs {
				if err := a.add(env); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(stmt.GroupBy) == 0 && len(order) == 0 {
		order = append(order, &group{aggs: newAggStates(b, calls)})
	}
	return emitAggRows(b, stmt, order, callIndex, g)
}

// evalAggExpr evaluates an expression in grouped context: aggregate calls
// resolve to their accumulated value, other sub-expressions evaluate against
// the group's representative row (valid for GROUP BY keys, which are
// constant within a group).
func evalAggExpr(b *binder, e sqlparse.Expr, gr *group, callIndex map[*sqlparse.Call]int) (table.Value, error) {
	switch x := e.(type) {
	case *sqlparse.Call:
		idx, ok := callIndex[x]
		if !ok {
			return table.Null, fmt.Errorf("engine: internal: unregistered aggregate %s", x)
		}
		return gr.aggs[idx].value(), nil
	case *sqlparse.Binary:
		l, err := evalAggExpr(b, x.Left, gr, callIndex)
		if err != nil {
			return table.Null, err
		}
		r, err := evalAggExpr(b, x.Right, gr, callIndex)
		if err != nil {
			return table.Null, err
		}
		lit := &sqlparse.Binary{Op: x.Op, Left: &sqlparse.Literal{Value: l}, Right: &sqlparse.Literal{Value: r}}
		return evalExpr(lit, evalEnv{b: b})
	case *sqlparse.Unary:
		v, err := evalAggExpr(b, x.X, gr, callIndex)
		if err != nil {
			return table.Null, err
		}
		lit := &sqlparse.Unary{Op: x.Op, X: &sqlparse.Literal{Value: v}}
		return evalExpr(lit, evalEnv{b: b})
	default:
		if !gr.hasRep {
			// Empty global group: non-aggregate expressions are NULL.
			if _, ok := e.(*sqlparse.Literal); ok {
				return evalExpr(e, evalEnv{b: b})
			}
			return table.Null, nil
		}
		return evalExpr(e, gr.rep)
	}
}

// RewriteAggregateToSPJ strips aggregation from a query, following Section 3
// of the paper: aggregate and GROUP BY operators are removed, leaving a
// select-project-join query over the same tables and predicates. The SELECT
// list becomes the GROUP BY columns plus each aggregate's argument column;
// queries that end up with no projectable expression become SELECT *.
func RewriteAggregateToSPJ(stmt *sqlparse.Select) *sqlparse.Select {
	if !stmt.HasAggregates() {
		return stmt.Clone()
	}
	out := stmt.Clone()
	var items []sqlparse.SelectItem
	seen := map[string]bool{}
	addExpr := func(e sqlparse.Expr) {
		key := e.String()
		if seen[key] {
			return
		}
		seen[key] = true
		items = append(items, sqlparse.SelectItem{Expr: e})
	}
	for _, g := range out.GroupBy {
		addExpr(g)
	}
	for _, it := range out.Items {
		sqlparse.Walk(it.Expr, func(n sqlparse.Expr) {
			if c, ok := n.(*sqlparse.Call); ok && c.Arg != nil {
				addExpr(c.Arg.CloneExpr())
			}
		})
		if _, isCall := it.Expr.(*sqlparse.Call); !isCall {
			hasAgg := false
			sqlparse.Walk(it.Expr, func(n sqlparse.Expr) {
				if _, ok := n.(*sqlparse.Call); ok {
					hasAgg = true
				}
			})
			if !hasAgg {
				addExpr(it.Expr)
			}
		}
	}
	out.GroupBy = nil
	out.Having = nil
	out.OrderBy = nil
	out.Distinct = false
	out.Limit = -1 // a LIMIT on groups does not translate to a row limit
	if len(items) == 0 {
		out.Star = true
		out.Items = nil
	} else {
		out.Star = false
		out.Items = items
	}
	return out
}
