package engine

import (
	"fmt"
	"strings"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// aggState accumulates one aggregate function over a group.
type aggState struct {
	call  *sqlparse.Call
	count int64
	sum   float64
	min   table.Value
	max   table.Value
	seen  bool
}

func (a *aggState) add(b *binder, jr joinedRow) error {
	if a.call.Star {
		a.count++
		return nil
	}
	v, err := evalExpr(a.call.Arg, evalEnv{b: b, row: jr})
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	a.count++
	a.sum += v.AsFloat()
	if !a.seen || v.Compare(a.min) < 0 {
		a.min = v
	}
	if !a.seen || v.Compare(a.max) > 0 {
		a.max = v
	}
	a.seen = true
	return nil
}

func (a *aggState) value() table.Value {
	switch a.call.Name {
	case "COUNT":
		return table.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return table.Null
		}
		return table.NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return table.Null
		}
		return table.NewFloat(a.sum / float64(a.count))
	case "MIN":
		if !a.seen {
			return table.Null
		}
		return a.min
	case "MAX":
		if !a.seen {
			return table.Null
		}
		return a.max
	default:
		return table.Null
	}
}

// group holds the accumulators and a representative joined row for one
// grouping key.
type group struct {
	rep  joinedRow
	aggs []*aggState
}

// aggregate executes the grouping/aggregation path of a SELECT.
func aggregate(b *binder, stmt *sqlparse.Select, joined []joinedRow, g *guard) (*table.Table, error) {
	if stmt.Star {
		return nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregates")
	}

	// Collect every aggregate call appearing in the SELECT list and HAVING.
	var calls []*sqlparse.Call
	callIndex := map[*sqlparse.Call]int{}
	collect := func(e sqlparse.Expr) {
		sqlparse.Walk(e, func(n sqlparse.Expr) {
			if c, ok := n.(*sqlparse.Call); ok {
				if _, dup := callIndex[c]; !dup {
					callIndex[c] = len(calls)
					calls = append(calls, c)
				}
			}
		})
	}
	for _, it := range stmt.Items {
		collect(it.Expr)
	}
	collect(stmt.Having)

	// Group rows by the GROUP BY key.
	groups := map[string]*group{}
	var order []string
	for _, jr := range joined {
		if err := g.tick(1); err != nil {
			return nil, err
		}
		var kb strings.Builder
		for _, g := range stmt.GroupBy {
			v, err := evalExpr(g, evalEnv{b: b, row: jr})
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.Key())
			kb.WriteByte(0x1e)
		}
		key := kb.String()
		gr := groups[key]
		if gr == nil {
			gr = &group{rep: jr, aggs: make([]*aggState, len(calls))}
			for i, c := range calls {
				gr.aggs[i] = &aggState{call: c}
			}
			groups[key] = gr
			order = append(order, key)
		}
		for _, a := range gr.aggs {
			if err := a.add(b, jr); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregation over an empty input still yields one row
	// (COUNT(*) = 0 and friends).
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		gr := &group{rep: nil, aggs: make([]*aggState, len(calls))}
		for i, c := range calls {
			gr.aggs[i] = &aggState{call: c}
		}
		groups[""] = gr
		order = append(order, "")
	}

	// Output schema.
	schema := make(table.Schema, len(stmt.Items))
	for i, it := range stmt.Items {
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		schema[i] = table.Column{Name: name, Kind: inferKind(b, it.Expr)}
	}
	out := table.New("result", schema)

	for _, key := range order {
		gr := groups[key]
		if stmt.Having != nil {
			v, err := evalAggExpr(b, stmt.Having, gr, callIndex)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !truthy(v) {
				continue
			}
		}
		if err := g.out(1); err != nil {
			return nil, err
		}
		row := make(table.Row, len(stmt.Items))
		for i, it := range stmt.Items {
			v, err := evalAggExpr(b, it.Expr, gr, callIndex)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.AppendRow(row)
	}
	return out, nil
}

// evalAggExpr evaluates an expression in grouped context: aggregate calls
// resolve to their accumulated value, other sub-expressions evaluate against
// the group's representative row (valid for GROUP BY keys, which are
// constant within a group).
func evalAggExpr(b *binder, e sqlparse.Expr, gr *group, callIndex map[*sqlparse.Call]int) (table.Value, error) {
	switch x := e.(type) {
	case *sqlparse.Call:
		idx, ok := callIndex[x]
		if !ok {
			return table.Null, fmt.Errorf("engine: internal: unregistered aggregate %s", x)
		}
		return gr.aggs[idx].value(), nil
	case *sqlparse.Binary:
		l, err := evalAggExpr(b, x.Left, gr, callIndex)
		if err != nil {
			return table.Null, err
		}
		r, err := evalAggExpr(b, x.Right, gr, callIndex)
		if err != nil {
			return table.Null, err
		}
		lit := &sqlparse.Binary{Op: x.Op, Left: &sqlparse.Literal{Value: l}, Right: &sqlparse.Literal{Value: r}}
		return evalExpr(lit, evalEnv{b: b})
	case *sqlparse.Unary:
		v, err := evalAggExpr(b, x.X, gr, callIndex)
		if err != nil {
			return table.Null, err
		}
		lit := &sqlparse.Unary{Op: x.Op, X: &sqlparse.Literal{Value: v}}
		return evalExpr(lit, evalEnv{b: b})
	default:
		if gr.rep == nil {
			// Empty global group: non-aggregate expressions are NULL.
			if _, ok := e.(*sqlparse.Literal); ok {
				return evalExpr(e, evalEnv{b: b})
			}
			return table.Null, nil
		}
		return evalExpr(e, evalEnv{b: b, row: gr.rep})
	}
}

// RewriteAggregateToSPJ strips aggregation from a query, following Section 3
// of the paper: aggregate and GROUP BY operators are removed, leaving a
// select-project-join query over the same tables and predicates. The SELECT
// list becomes the GROUP BY columns plus each aggregate's argument column;
// queries that end up with no projectable expression become SELECT *.
func RewriteAggregateToSPJ(stmt *sqlparse.Select) *sqlparse.Select {
	if !stmt.HasAggregates() {
		return stmt.Clone()
	}
	out := stmt.Clone()
	var items []sqlparse.SelectItem
	seen := map[string]bool{}
	addExpr := func(e sqlparse.Expr) {
		key := e.String()
		if seen[key] {
			return
		}
		seen[key] = true
		items = append(items, sqlparse.SelectItem{Expr: e})
	}
	for _, g := range out.GroupBy {
		addExpr(g)
	}
	for _, it := range out.Items {
		sqlparse.Walk(it.Expr, func(n sqlparse.Expr) {
			if c, ok := n.(*sqlparse.Call); ok && c.Arg != nil {
				addExpr(c.Arg.CloneExpr())
			}
		})
		if _, isCall := it.Expr.(*sqlparse.Call); !isCall {
			hasAgg := false
			sqlparse.Walk(it.Expr, func(n sqlparse.Expr) {
				if _, ok := n.(*sqlparse.Call); ok {
					hasAgg = true
				}
			})
			if !hasAgg {
				addExpr(it.Expr)
			}
		}
	}
	out.GroupBy = nil
	out.Having = nil
	out.OrderBy = nil
	out.Distinct = false
	out.Limit = -1 // a LIMIT on groups does not translate to a row limit
	if len(items) == 0 {
		out.Star = true
		out.Items = nil
	} else {
		out.Star = false
		out.Items = items
	}
	return out
}
