package workload

import (
	"math"
	"math/rand"
	"testing"

	"asqprl/internal/datagen"
	"asqprl/internal/engine"
	"asqprl/internal/table"
)

func TestNewNormalizesWeights(t *testing.T) {
	w := MustNew(
		"SELECT * FROM t WHERE a > 1",
		"SELECT * FROM t WHERE a > 2",
		"SELECT * FROM t WHERE a > 3",
	)
	var sum float64
	for _, q := range w {
		sum += q.Weight
		if q.Stmt == nil {
			t.Error("statement not parsed")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty workload should error")
	}
	if _, err := New("NOT SQL"); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestNormalizeZeroWeights(t *testing.T) {
	w := MustNew("SELECT * FROM t", "SELECT * FROM u")
	w[0].Weight, w[1].Weight = 0, 0
	w.Normalize()
	if math.Abs(w[0].Weight-0.5) > 1e-9 {
		t.Errorf("zero weights should become uniform, got %v", w[0].Weight)
	}
}

func TestSplit(t *testing.T) {
	w := MustNew(
		"SELECT * FROM t WHERE a > 1",
		"SELECT * FROM t WHERE a > 2",
		"SELECT * FROM t WHERE a > 3",
		"SELECT * FROM t WHERE a > 4",
		"SELECT * FROM t WHERE a > 5",
	)
	rng := rand.New(rand.NewSource(1))
	train, test := w.Split(0.6, rng)
	if len(train) != 3 || len(test) != 2 {
		t.Errorf("split = %d/%d, want 3/2", len(train), len(test))
	}
	// Both sides normalized.
	var s float64
	for _, q := range train {
		s += q.Weight
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("train weights sum %v", s)
	}
	// Extreme fractions still give non-empty sides.
	train, test = w.Split(0.0, rng)
	if len(train) == 0 {
		t.Error("train should never be empty")
	}
	train, test = w.Split(1.0, rng)
	if len(test) == 0 {
		t.Error("test should never be empty for n >= 2")
	}
}

func TestSplitEmpty(t *testing.T) {
	var w Workload
	train, test := w.Split(0.5, rand.New(rand.NewSource(1)))
	if train != nil || test != nil {
		t.Error("empty split should be nil/nil")
	}
}

func TestMergeAndSubset(t *testing.T) {
	a := MustNew("SELECT * FROM t WHERE a > 1")
	b := MustNew("SELECT * FROM t WHERE a > 2", "SELECT * FROM t WHERE a > 3")
	m := Merge(a, b)
	if len(m) != 3 {
		t.Fatalf("merged = %d", len(m))
	}
	var sum float64
	for _, q := range m {
		sum += q.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("merged weights sum %v", sum)
	}
	sub := m.Subset([]int{0, 2, 99, -1})
	if len(sub) != 2 {
		t.Errorf("subset = %d, want 2", len(sub))
	}
}

func TestSQLsAndStatements(t *testing.T) {
	w := MustNew("SELECT * FROM t WHERE a > 1")
	if len(w.SQLs()) != 1 || len(w.Statements()) != 1 {
		t.Error("accessors wrong")
	}
	if w.SQLs()[0] != "SELECT * FROM t WHERE a > 1" {
		t.Errorf("SQL = %q", w.SQLs()[0])
	}
}

func TestFromStatements(t *testing.T) {
	w := MustNew("SELECT * FROM t WHERE a > 1", "SELECT * FROM t WHERE a > 2")
	w2 := FromStatements(w.Statements())
	if len(w2) != 2 || w2[0].SQL == "" {
		t.Errorf("FromStatements = %+v", w2)
	}
}

// TestGeneratedWorkloadsExecute verifies the dataset-specific generators
// produce parseable queries that run against their datasets and mostly
// return rows.
func TestGeneratedWorkloadsExecute(t *testing.T) {
	cases := []struct {
		name string
		db   *table.Database
		w    Workload
	}{
		{"imdb", datagen.IMDB(0.02, 1), IMDB(15, 2)},
		{"mas", datagen.MAS(0.02, 1), MAS(15, 2)},
		{"flights", datagen.Flights(0.02, 1), Flights(15, 2)},
		{"flights-agg", datagen.Flights(0.02, 1), FlightsAggregates(12, 2)},
	}
	for _, c := range cases {
		nonEmpty := 0
		for _, q := range c.w {
			res, err := engine.ExecuteWith(c.db, q.Stmt, engine.Options{})
			if err != nil {
				t.Errorf("%s: query %q fails: %v", c.name, q.SQL, err)
				continue
			}
			if res.Table.NumRows() > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 5 {
			t.Errorf("%s: only %d of %d queries returned rows", c.name, nonEmpty, len(c.w))
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := IMDB(10, 5)
	b := IMDB(10, 5)
	for i := range a {
		if a[i].SQL != b[i].SQL {
			t.Fatal("same seed should generate identical workloads")
		}
	}
	c := IMDB(10, 6)
	same := true
	for i := range a {
		if a[i].SQL != c[i].SQL {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestAggregateWorkloadHasGroups(t *testing.T) {
	w := FlightsAggregates(12, 3)
	grouped := 0
	for _, q := range w {
		if !q.Stmt.HasAggregates() {
			t.Errorf("non-aggregate query in aggregate workload: %s", q.SQL)
		}
		if len(q.Stmt.GroupBy) > 0 {
			grouped++
		}
	}
	if grouped == 0 {
		t.Error("no GROUP BY queries generated")
	}
}
