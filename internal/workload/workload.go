// Package workload defines query workloads — weighted sets of SQL queries —
// and utilities to build, normalize, split and cluster them. Synthetic
// workload generators for the IMDB-, MAS- and FLIGHTS-shaped datasets live in
// generate.go; the statistics-driven generator used when no workload is
// provided (Section 4.5 of the paper) lives in internal/core.
package workload

import (
	"fmt"
	"math/rand"

	"asqprl/internal/sqlparse"
)

// Query is one workload entry: a parsed statement with a weight.
type Query struct {
	SQL    string
	Stmt   *sqlparse.Select
	Weight float64
}

// Workload is a weighted set of queries. Weights are kept normalized to sum
// to 1 by the constructors; use Normalize after manual edits.
type Workload []Query

// New parses the given SQL strings into a uniformly-weighted workload.
func New(sqls ...string) (Workload, error) {
	if len(sqls) == 0 {
		return nil, fmt.Errorf("workload: empty workload")
	}
	w := make(Workload, 0, len(sqls))
	for _, s := range sqls {
		stmt, err := sqlparse.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("workload: query %q: %w", s, err)
		}
		w = append(w, Query{SQL: s, Stmt: stmt, Weight: 1})
	}
	w.Normalize()
	return w, nil
}

// MustNew is New for tests and literal workloads; it panics on error.
func MustNew(sqls ...string) Workload {
	w, err := New(sqls...)
	if err != nil {
		panic(err)
	}
	return w
}

// FromStatements wraps already-parsed statements with uniform weights.
func FromStatements(stmts []*sqlparse.Select) Workload {
	w := make(Workload, 0, len(stmts))
	for _, s := range stmts {
		w = append(w, Query{SQL: s.String(), Stmt: s, Weight: 1})
	}
	w.Normalize()
	return w
}

// Normalize rescales weights to sum to 1 (uniform if all are zero).
func (w Workload) Normalize() {
	var total float64
	for _, q := range w {
		total += q.Weight
	}
	if total <= 0 {
		for i := range w {
			w[i].Weight = 1
		}
		total = float64(len(w))
	}
	for i := range w {
		w[i].Weight /= total
	}
}

// SQLs returns the SQL text of every query.
func (w Workload) SQLs() []string {
	out := make([]string, len(w))
	for i, q := range w {
		out[i] = q.SQL
	}
	return out
}

// Statements returns the parsed statements of every query.
func (w Workload) Statements() []*sqlparse.Select {
	out := make([]*sqlparse.Select, len(w))
	for i, q := range w {
		out[i] = q.Stmt
	}
	return out
}

// Split partitions the workload into train and test sets, shuffling with
// rng. trainFrac is clamped so both sides are non-empty when len(w) >= 2.
func (w Workload) Split(trainFrac float64, rng *rand.Rand) (train, test Workload) {
	n := len(w)
	if n == 0 {
		return nil, nil
	}
	idx := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= n && n >= 2 {
		nTrain = n - 1
	}
	for i, j := range idx {
		if i < nTrain {
			train = append(train, w[j])
		} else {
			test = append(test, w[j])
		}
	}
	train.Normalize()
	test.Normalize()
	return train, test
}

// Merge combines workloads, renormalizing weights.
func Merge(ws ...Workload) Workload {
	var out Workload
	for _, w := range ws {
		out = append(out, w...)
	}
	out.Normalize()
	return out
}

// Subset returns the queries at the given indices as a normalized workload.
func (w Workload) Subset(indices []int) Workload {
	out := make(Workload, 0, len(indices))
	for _, i := range indices {
		if i >= 0 && i < len(w) {
			out = append(out, w[i])
		}
	}
	out.Normalize()
	return out
}
