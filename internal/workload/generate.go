package workload

import (
	"fmt"
	"math/rand"
)

// The template-based generators below synthesize SPJ (and optionally
// aggregate) workloads against the schemas produced by internal/datagen.
// They play the role of the paper's benchmark workloads: the IMDB-JOB query
// workload, the MAS workload of [5], and the IDEBench-generated FLIGHTS
// queries. Constants are drawn from the value domains the datagen package
// uses, so queries are selective but non-empty with high probability.

var imdbGenres = []string{
	"drama", "comedy", "action", "thriller", "documentary", "horror",
	"romance", "scifi", "animation", "western",
}

var imdbRoles = []string{"actor", "actress", "director", "producer", "writer", "composer", "editor"}

var imdbInfoTypes = []string{"budget", "gross", "runtime"}

// IMDB generates n SPJ queries against the datagen.IMDB schema.
func IMDB(n int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	gen := []func() string{
		func() string {
			return fmt.Sprintf("SELECT * FROM title WHERE genre = '%s' AND production_year > %d",
				imdbGenres[rng.Intn(len(imdbGenres))], 1960+rng.Intn(55))
		},
		func() string {
			return fmt.Sprintf("SELECT title, rating FROM title WHERE rating >= %.1f AND genre = '%s'",
				5.5+rng.Float64()*3, imdbGenres[rng.Intn(len(imdbGenres))])
		},
		func() string {
			lo := 1950 + rng.Intn(40)
			return fmt.Sprintf("SELECT t.title, c.role FROM title t JOIN cast_info c ON t.id = c.title_id WHERE c.role = '%s' AND t.production_year BETWEEN %d AND %d",
				imdbRoles[rng.Intn(len(imdbRoles))], lo, lo+10+rng.Intn(20))
		},
		func() string {
			g := "m"
			if rng.Intn(2) == 0 {
				g = "f"
			}
			return fmt.Sprintf("SELECT n.name, t.title FROM title t JOIN cast_info c ON t.id = c.title_id JOIN name n ON c.name_id = n.id WHERE t.genre = '%s' AND n.gender = '%s'",
				imdbGenres[rng.Intn(len(imdbGenres))], g)
		},
		func() string {
			return fmt.Sprintf("SELECT t.title, m.value FROM title t JOIN movie_info m ON t.id = m.title_id WHERE m.info_type = '%s' AND m.value > %d",
				imdbInfoTypes[rng.Intn(len(imdbInfoTypes))], 50+rng.Intn(400)*1000)
		},
		func() string {
			return fmt.Sprintf("SELECT * FROM title WHERE votes > %d AND rating > %.1f",
				100+rng.Intn(5000), 4+rng.Float64()*4)
		},
		func() string {
			return fmt.Sprintf("SELECT t.title FROM title t JOIN cast_info c ON t.id = c.title_id WHERE c.role = '%s' AND t.rating > %.1f AND t.kind = 'movie'",
				imdbRoles[rng.Intn(len(imdbRoles))], 5+rng.Float64()*3)
		},
	}
	return fromGenerators(gen, n, rng)
}

var masAreas = []string{
	"databases", "machine learning", "systems", "theory", "vision",
	"networks", "security", "hci",
}

var masAffiliations = []string{
	"MIT", "Stanford", "Berkeley", "CMU", "Tel Aviv University",
	"University of Pennsylvania", "ETH Zurich", "Oxford", "Tsinghua",
	"Technion", "EPFL", "Max Planck",
}

// MAS generates n SPJ queries against the datagen.MAS schema.
func MAS(n int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	gen := []func() string{
		func() string {
			return fmt.Sprintf("SELECT * FROM author WHERE affiliation = '%s' AND pub_count > %d",
				masAffiliations[rng.Intn(len(masAffiliations))], 1+rng.Intn(40))
		},
		func() string {
			return fmt.Sprintf("SELECT a.name, p.title FROM author a JOIN writes w ON a.id = w.author_id JOIN publication p ON w.publication_id = p.id WHERE p.year > %d AND a.affiliation = '%s'",
				1995+rng.Intn(25), masAffiliations[rng.Intn(len(masAffiliations))])
		},
		func() string {
			lo := 1992 + rng.Intn(25)
			return fmt.Sprintf("SELECT p.title FROM publication p JOIN conference c ON p.conference_id = c.id WHERE c.area = '%s' AND p.year BETWEEN %d AND %d",
				masAreas[rng.Intn(len(masAreas))], lo, lo+3+rng.Intn(8))
		},
		func() string {
			return fmt.Sprintf("SELECT title, citations FROM publication WHERE citations > %d",
				20+rng.Intn(800))
		},
		func() string {
			return fmt.Sprintf("SELECT p.title, c.name FROM publication p JOIN conference c ON p.conference_id = c.id WHERE c.rank = %d AND p.citations > %d",
				1+rng.Intn(4), 5+rng.Intn(200))
		},
		func() string {
			return fmt.Sprintf("SELECT * FROM publication WHERE year = %d AND citations BETWEEN %d AND %d",
				1995+rng.Intn(28), rng.Intn(50), 100+rng.Intn(900))
		},
	}
	return fromGenerators(gen, n, rng)
}

var flightCarriers = []string{"AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9"}

var flightAirports = []string{
	"ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO",
}

// Flights generates n SPJ queries against the datagen.Flights schema.
func Flights(n int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	gen := []func() string{
		func() string {
			return fmt.Sprintf("SELECT * FROM flights WHERE carrier = '%s' AND dep_delay > %d",
				flightCarriers[rng.Intn(len(flightCarriers))], 10+rng.Intn(90))
		},
		func() string {
			return fmt.Sprintf("SELECT * FROM flights WHERE origin = '%s' AND month = %d",
				flightAirports[rng.Intn(len(flightAirports))], 1+rng.Intn(12))
		},
		func() string {
			lo := float64(rng.Intn(40))
			return fmt.Sprintf("SELECT * FROM flights WHERE dest = '%s' AND arr_delay BETWEEN %.0f AND %.0f",
				flightAirports[rng.Intn(len(flightAirports))], lo, lo+30+float64(rng.Intn(60)))
		},
		func() string {
			return fmt.Sprintf("SELECT carrier, origin, dep_delay FROM flights WHERE distance > %d AND dep_delay > %d",
				500+rng.Intn(2000), 5+rng.Intn(60))
		},
		func() string {
			return fmt.Sprintf("SELECT * FROM flights WHERE day_of_week = %d AND carrier IN ('%s', '%s')",
				1+rng.Intn(7), flightCarriers[rng.Intn(len(flightCarriers))],
				flightCarriers[rng.Intn(len(flightCarriers))])
		},
	}
	return fromGenerators(gen, n, rng)
}

// FlightsAggregates generates n aggregate queries against datagen.Flights,
// the workload shape of the Section 6.4 AQP comparison (sum/avg/count with
// and without GROUP BY).
func FlightsAggregates(n int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	aggCols := []string{"dep_delay", "arr_delay", "distance"}
	groupCols := []string{"carrier", "origin", "month", "day_of_week"}
	fns := []string{"SUM", "AVG", "COUNT"}
	gen := []func() string{
		func() string { // grouped
			fn := fns[rng.Intn(len(fns))]
			expr := fmt.Sprintf("%s(%s)", fn, aggCols[rng.Intn(len(aggCols))])
			if fn == "COUNT" {
				expr = "COUNT(*)"
			}
			g := groupCols[rng.Intn(len(groupCols))]
			return fmt.Sprintf("SELECT %s, %s FROM flights WHERE dep_delay > %d GROUP BY %s",
				g, expr, rng.Intn(40), g)
		},
		func() string { // global
			fn := fns[rng.Intn(len(fns))]
			expr := fmt.Sprintf("%s(%s)", fn, aggCols[rng.Intn(len(aggCols))])
			if fn == "COUNT" {
				expr = "COUNT(*)"
			}
			return fmt.Sprintf("SELECT %s FROM flights WHERE carrier = '%s' AND month = %d",
				expr, flightCarriers[rng.Intn(len(flightCarriers))], 1+rng.Intn(12))
		},
		func() string { // grouped with airport filter
			g := groupCols[rng.Intn(len(groupCols))]
			return fmt.Sprintf("SELECT %s, AVG(arr_delay) FROM flights WHERE origin = '%s' GROUP BY %s",
				g, flightAirports[rng.Intn(len(flightAirports))], g)
		},
	}
	return fromGenerators(gen, n, rng)
}

// fromGenerators round-robins templates until n distinct queries exist.
func fromGenerators(gen []func() string, n int, rng *rand.Rand) Workload {
	seen := map[string]bool{}
	var sqls []string
	for attempts := 0; len(sqls) < n && attempts < n*30; attempts++ {
		sql := gen[attempts%len(gen)]()
		if seen[sql] {
			continue
		}
		seen[sql] = true
		sqls = append(sqls, sql)
	}
	return MustNew(sqls...)
}
