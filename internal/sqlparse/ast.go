package sqlparse

import (
	"fmt"
	"strings"

	"asqprl/internal/table"
)

// Expr is a SQL expression node. Every expression can render itself back to
// SQL text (String) and deep-copy itself (CloneExpr).
type Expr interface {
	fmt.Stringer
	exprNode()
	CloneExpr() Expr
}

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // may be ""
	Column string
}

func (*ColumnRef) exprNode() {}

// String renders the reference as [table.]column.
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// CloneExpr returns a deep copy.
func (c *ColumnRef) CloneExpr() Expr { cp := *c; return &cp }

// Literal is a constant value.
type Literal struct {
	Value table.Value
}

func (*Literal) exprNode() {}

// String renders the literal as SQL text (strings quoted, NULL as NULL).
func (l *Literal) String() string {
	switch l.Value.Kind {
	case table.KindNull:
		return "NULL"
	case table.KindString:
		return "'" + strings.ReplaceAll(l.Value.Str, "'", "''") + "'"
	case table.KindBool:
		if l.Value.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return l.Value.String()
	}
}

// CloneExpr returns a deep copy.
func (l *Literal) CloneExpr() Expr { cp := *l; return &cp }

// Binary is a binary operation. Op is one of AND OR = <> < <= > >= + - * / %.
type Binary struct {
	Op          string
	Left, Right Expr
}

func (*Binary) exprNode() {}

// String renders the operation with minimal parenthesization (children are
// parenthesized when they are themselves binary ops, which keeps the output
// unambiguous without tracking precedence).
func (b *Binary) String() string {
	return fmt.Sprintf("%s %s %s", parenthesize(b.Left), b.Op, parenthesize(b.Right))
}

// CloneExpr returns a deep copy.
func (b *Binary) CloneExpr() Expr {
	return &Binary{Op: b.Op, Left: b.Left.CloneExpr(), Right: b.Right.CloneExpr()}
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case *Binary, *In, *Between, *Like, *IsNull:
		return "(" + e.String() + ")"
	default:
		return e.String()
	}
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (*Unary) exprNode() {}

// String renders the unary operation.
func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "NOT " + parenthesize(u.X)
	}
	return u.Op + parenthesize(u.X)
}

// CloneExpr returns a deep copy.
func (u *Unary) CloneExpr() Expr { return &Unary{Op: u.Op, X: u.X.CloneExpr()} }

// In is "x [NOT] IN (e1, e2, ...)".
type In struct {
	X    Expr
	List []Expr
	Not  bool
}

func (*In) exprNode() {}

// String renders the IN predicate.
func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	op := "IN"
	if in.Not {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", parenthesize(in.X), op, strings.Join(parts, ", "))
}

// CloneExpr returns a deep copy.
func (in *In) CloneExpr() Expr {
	list := make([]Expr, len(in.List))
	for i, e := range in.List {
		list[i] = e.CloneExpr()
	}
	return &In{X: in.X.CloneExpr(), List: list, Not: in.Not}
}

// Between is "x [NOT] BETWEEN lo AND hi".
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*Between) exprNode() {}

// String renders the BETWEEN predicate.
func (b *Between) String() string {
	op := "BETWEEN"
	if b.Not {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("%s %s %s AND %s", parenthesize(b.X), op, parenthesize(b.Lo), parenthesize(b.Hi))
}

// CloneExpr returns a deep copy.
func (b *Between) CloneExpr() Expr {
	return &Between{X: b.X.CloneExpr(), Lo: b.Lo.CloneExpr(), Hi: b.Hi.CloneExpr(), Not: b.Not}
}

// Like is "x [NOT] LIKE 'pattern'" with % and _ wildcards.
type Like struct {
	X       Expr
	Pattern string
	Not     bool
}

func (*Like) exprNode() {}

// String renders the LIKE predicate.
func (l *Like) String() string {
	op := "LIKE"
	if l.Not {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", parenthesize(l.X), op, strings.ReplaceAll(l.Pattern, "'", "''"))
}

// CloneExpr returns a deep copy.
func (l *Like) CloneExpr() Expr { cp := *l; cp.X = l.X.CloneExpr(); return &cp }

// IsNull is "x IS [NOT] NULL".
type IsNull struct {
	X   Expr
	Not bool
}

func (*IsNull) exprNode() {}

// String renders the IS NULL predicate.
func (n *IsNull) String() string {
	if n.Not {
		return parenthesize(n.X) + " IS NOT NULL"
	}
	return parenthesize(n.X) + " IS NULL"
}

// CloneExpr returns a deep copy.
func (n *IsNull) CloneExpr() Expr { return &IsNull{X: n.X.CloneExpr(), Not: n.Not} }

// Call is an aggregate function call: COUNT(*), COUNT(x), SUM(x), AVG(x),
// MIN(x), MAX(x).
type Call struct {
	Name string // upper-case
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

func (*Call) exprNode() {}

// String renders the call.
func (c *Call) String() string {
	if c.Star {
		return c.Name + "(*)"
	}
	return fmt.Sprintf("%s(%s)", c.Name, c.Arg)
}

// CloneExpr returns a deep copy.
func (c *Call) CloneExpr() Expr {
	cp := &Call{Name: c.Name, Star: c.Star}
	if c.Arg != nil {
		cp.Arg = c.Arg.CloneExpr()
	}
	return cp
}

// IsAggregateName reports whether name is a supported aggregate function.
func IsAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// TableRef is an entry in a FROM list: a table name with an optional alias.
type TableRef struct {
	Table string
	Alias string // "" when unaliased
}

// Name returns the alias if set, else the table name; this is the name
// columns are qualified with.
func (r TableRef) Name() string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Table
}

// String renders the reference.
func (r TableRef) String() string {
	if r.Alias != "" {
		return r.Table + " AS " + r.Alias
	}
	return r.Table
}

// Join is an explicit "JOIN t [AS a] ON cond" clause.
type Join struct {
	Ref TableRef
	On  Expr
}

// SelectItem is one projection: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// String renders the projection item.
func (s SelectItem) String() string {
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// String renders the order key.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// Select is a parsed SELECT statement.
type Select struct {
	Distinct bool
	Star     bool // SELECT *
	Items    []SelectItem
	From     []TableRef
	Joins    []Join
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// String renders the statement back to SQL. Parse(stmt.String()) yields an
// equivalent statement (round-trip property, tested).
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		parts := make([]string, len(s.Items))
		for i, it := range s.Items {
			parts[i] = it.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM ")
	froms := make([]string, len(s.From))
	for i, f := range s.From {
		froms[i] = f.String()
	}
	b.WriteString(strings.Join(froms, ", "))
	for _, j := range s.Joins {
		fmt.Fprintf(&b, " JOIN %s ON %s", j.Ref, j.On)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// Clone returns a deep copy of the statement.
func (s *Select) Clone() *Select {
	cp := &Select{
		Distinct: s.Distinct,
		Star:     s.Star,
		Limit:    s.Limit,
	}
	for _, it := range s.Items {
		cp.Items = append(cp.Items, SelectItem{Expr: it.Expr.CloneExpr(), Alias: it.Alias})
	}
	cp.From = append(cp.From, s.From...)
	for _, j := range s.Joins {
		cp.Joins = append(cp.Joins, Join{Ref: j.Ref, On: j.On.CloneExpr()})
	}
	if s.Where != nil {
		cp.Where = s.Where.CloneExpr()
	}
	for _, g := range s.GroupBy {
		cp.GroupBy = append(cp.GroupBy, g.CloneExpr())
	}
	if s.Having != nil {
		cp.Having = s.Having.CloneExpr()
	}
	for _, o := range s.OrderBy {
		cp.OrderBy = append(cp.OrderBy, OrderItem{Expr: o.Expr.CloneExpr(), Desc: o.Desc})
	}
	return cp
}

// HasAggregates reports whether the statement uses aggregate functions or
// GROUP BY.
func (s *Select) HasAggregates() bool {
	if len(s.GroupBy) > 0 || s.Having != nil {
		return true
	}
	found := false
	for _, it := range s.Items {
		Walk(it.Expr, func(e Expr) {
			if _, ok := e.(*Call); ok {
				found = true
			}
		})
	}
	return found
}

// Walk traverses e depth-first, invoking fn on every node.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		Walk(x.Left, fn)
		Walk(x.Right, fn)
	case *Unary:
		Walk(x.X, fn)
	case *In:
		Walk(x.X, fn)
		for _, item := range x.List {
			Walk(item, fn)
		}
	case *Between:
		Walk(x.X, fn)
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case *Like:
		Walk(x.X, fn)
	case *IsNull:
		Walk(x.X, fn)
	case *Call:
		Walk(x.Arg, fn)
	}
}

// Columns returns every column reference appearing anywhere in the
// statement, in traversal order.
func (s *Select) Columns() []*ColumnRef {
	var out []*ColumnRef
	collect := func(e Expr) {
		Walk(e, func(n Expr) {
			if c, ok := n.(*ColumnRef); ok {
				out = append(out, c)
			}
		})
	}
	for _, it := range s.Items {
		collect(it.Expr)
	}
	for _, j := range s.Joins {
		collect(j.On)
	}
	collect(s.Where)
	for _, g := range s.GroupBy {
		collect(g)
	}
	collect(s.Having)
	for _, o := range s.OrderBy {
		collect(o.Expr)
	}
	return out
}

// Conjuncts splits e on top-level ANDs. A nil expression yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// AndAll joins exprs with AND; it returns nil for an empty slice.
func AndAll(exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "AND", Left: out, Right: e}
		}
	}
	return out
}
