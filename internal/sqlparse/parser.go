package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"asqprl/internal/table"
)

// Parse parses a single SELECT statement.
func Parse(sql string) (*Select, error) {
	toks := lex(sql)
	if last := toks[len(toks)-1]; last.kind == tokError {
		return nil, fmt.Errorf("sqlparse: %s", last.text)
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, fmt.Errorf("sqlparse: %w", err)
	}
	// Allow an optional trailing semicolon.
	if p.peek().kind == tokOp && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: unexpected trailing input %q at offset %d", p.peek().text, p.peek().pos)
	}
	return stmt, nil
}

// MustParse parses sql and panics on error. It is intended for tests and
// literal workload definitions.
func MustParse(sql string) *Select {
	s, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		t := p.peek()
		return fmt.Errorf("expected %s, got %q at offset %d", kw, t.text, t.pos)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		t := p.peek()
		return fmt.Errorf("expected %q, got %q at offset %d", op, t.text, t.pos)
	}
	return nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &Select{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	if p.acceptOp("*") {
		stmt.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptOp(",") {
			break
		}
	}

	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, Join{Ref: ref, On: cond})
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("expected number after LIMIT, got %q at offset %d", t.text, t.pos)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid LIMIT %q at offset %d", t.text, t.pos)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.kind != tokIdent {
			return SelectItem{}, fmt.Errorf("expected alias after AS, got %q at offset %d", t.text, t.pos)
		}
		p.next()
		item.Alias = t.text
	} else if t := p.peek(); t.kind == tokIdent {
		// Bare alias: SELECT a.x total FROM ...
		p.next()
		item.Alias = t.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("expected table name, got %q at offset %d", t.text, t.pos)
	}
	p.next()
	ref := TableRef{Table: t.text}
	if p.acceptKeyword("AS") {
		a := p.peek()
		if a.kind != tokIdent {
			return TableRef{}, fmt.Errorf("expected alias after AS, got %q at offset %d", a.text, a.pos)
		}
		p.next()
		ref.Alias = a.text
	} else if a := p.peek(); a.kind == tokIdent {
		p.next()
		ref.Alias = a.text
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr     = orExpr
//	orExpr   = andExpr { OR andExpr }
//	andExpr  = notExpr { AND notExpr }
//	notExpr  = [NOT] predicate
//	predicate = additive [ compOp additive | [NOT] IN (...) |
//	            [NOT] BETWEEN additive AND additive |
//	            [NOT] LIKE 'pat' | IS [NOT] NULL ]
//	additive = multiplicative { (+|-) multiplicative }
//	multiplicative = unary { (*|/|%) unary }
//	unary    = [-] primary
//	primary  = literal | columnRef | aggregate call | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Optional NOT before IN/BETWEEN/LIKE.
	negated := false
	if t := p.peek(); t.kind == tokKeyword && t.text == "NOT" {
		if nt := p.toks[p.pos+1]; nt.kind == tokKeyword && (nt.text == "IN" || nt.text == "BETWEEN" || nt.text == "LIKE") {
			p.next()
			negated = true
		}
	}
	t := p.peek()
	switch {
	case t.kind == tokOp && isCompOp(t.text):
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: t.text, Left: left, Right: right}, nil
	case t.kind == tokKeyword && t.text == "IN":
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &In{X: left, List: list, Not: negated}, nil
	case t.kind == tokKeyword && t.text == "BETWEEN":
		p.next()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: left, Lo: lo, Hi: hi, Not: negated}, nil
	case t.kind == tokKeyword && t.text == "LIKE":
		p.next()
		pt := p.peek()
		if pt.kind != tokString {
			return nil, fmt.Errorf("expected string pattern after LIKE, got %q at offset %d", pt.text, pt.pos)
		}
		p.next()
		return &Like{X: left, Pattern: pt.text, Not: negated}, nil
	case t.kind == tokKeyword && t.text == "IS":
		p.next()
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: left, Not: isNot}, nil
	}
	return left, nil
}

func isCompOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.text, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.kind == tokOp && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation into numeric literals for cleaner ASTs.
		if lit, ok := x.(*Literal); ok {
			switch lit.Value.Kind {
			case table.KindInt:
				return &Literal{Value: table.NewInt(-lit.Value.Int)}, nil
			case table.KindFloat:
				return &Literal{Value: table.NewFloat(-lit.Value.Float)}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("invalid number %q at offset %d", t.text, t.pos)
			}
			return &Literal{Value: table.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid number %q at offset %d", t.text, t.pos)
		}
		return &Literal{Value: table.NewInt(n)}, nil
	case tokString:
		p.next()
		return &Literal{Value: table.NewString(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Value: table.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: table.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: table.NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			call := &Call{Name: t.text}
			if p.acceptOp("*") {
				call.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Arg = arg
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return nil, fmt.Errorf("unexpected keyword %q at offset %d", t.text, t.pos)
	case tokIdent:
		p.next()
		ref := &ColumnRef{Column: t.text}
		if p.acceptOp(".") {
			ct := p.peek()
			if ct.kind != tokIdent {
				return nil, fmt.Errorf("expected column after %q., got %q at offset %d", t.text, ct.text, ct.pos)
			}
			p.next()
			ref.Table = t.text
			ref.Column = ct.text
		}
		return ref, nil
	case tokOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("unexpected token %q at offset %d", t.text, t.pos)
}
