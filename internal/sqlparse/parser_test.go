package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"asqprl/internal/table"
)

func TestParseSimpleSelect(t *testing.T) {
	s, err := Parse("SELECT id, title FROM movies WHERE year > 2000")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Items) != 2 || s.Star {
		t.Fatalf("items = %v, star = %v", s.Items, s.Star)
	}
	if len(s.From) != 1 || s.From[0].Table != "movies" {
		t.Fatalf("from = %v", s.From)
	}
	bin, ok := s.Where.(*Binary)
	if !ok || bin.Op != ">" {
		t.Fatalf("where = %v", s.Where)
	}
}

func TestParseStar(t *testing.T) {
	s := MustParse("SELECT * FROM t")
	if !s.Star || len(s.Items) != 0 {
		t.Errorf("star not parsed: %+v", s)
	}
}

func TestParseDistinct(t *testing.T) {
	s := MustParse("SELECT DISTINCT a FROM t")
	if !s.Distinct {
		t.Error("DISTINCT not parsed")
	}
}

func TestParseAliases(t *testing.T) {
	s := MustParse("SELECT m.title AS name, m.year yr FROM movies AS m, people p")
	if s.Items[0].Alias != "name" || s.Items[1].Alias != "yr" {
		t.Errorf("aliases = %q, %q", s.Items[0].Alias, s.Items[1].Alias)
	}
	if s.From[0].Alias != "m" || s.From[1].Alias != "p" {
		t.Errorf("from aliases = %v", s.From)
	}
	if s.From[0].Name() != "m" {
		t.Errorf("Name() = %q, want alias", s.From[0].Name())
	}
}

func TestParseExplicitJoin(t *testing.T) {
	s := MustParse("SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w")
	if len(s.Joins) != 2 {
		t.Fatalf("joins = %v", s.Joins)
	}
	if s.Joins[0].Ref.Table != "b" || s.Joins[1].Ref.Table != "c" {
		t.Errorf("join tables = %v, %v", s.Joins[0].Ref, s.Joins[1].Ref)
	}
}

func TestParsePredicates(t *testing.T) {
	cases := []struct {
		sql  string
		want string // type description
	}{
		{"SELECT * FROM t WHERE a IN (1, 2, 3)", "in"},
		{"SELECT * FROM t WHERE a NOT IN (1)", "in-not"},
		{"SELECT * FROM t WHERE a BETWEEN 1 AND 10", "between"},
		{"SELECT * FROM t WHERE a NOT BETWEEN 1 AND 10", "between-not"},
		{"SELECT * FROM t WHERE name LIKE 'abc%'", "like"},
		{"SELECT * FROM t WHERE name NOT LIKE '_x'", "like-not"},
		{"SELECT * FROM t WHERE a IS NULL", "isnull"},
		{"SELECT * FROM t WHERE a IS NOT NULL", "isnull-not"},
	}
	for _, c := range cases {
		s, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		switch w := s.Where.(type) {
		case *In:
			if (c.want == "in-not") != w.Not || !strings.HasPrefix(c.want, "in") {
				t.Errorf("%s: got %T not=%v", c.sql, w, w.Not)
			}
		case *Between:
			if (c.want == "between-not") != w.Not || !strings.HasPrefix(c.want, "between") {
				t.Errorf("%s: got %T not=%v", c.sql, w, w.Not)
			}
		case *Like:
			if (c.want == "like-not") != w.Not || !strings.HasPrefix(c.want, "like") {
				t.Errorf("%s: got %T not=%v", c.sql, w, w.Not)
			}
		case *IsNull:
			if (c.want == "isnull-not") != w.Not || !strings.HasPrefix(c.want, "isnull") {
				t.Errorf("%s: got %T not=%v", c.sql, w, w.Not)
			}
		default:
			t.Errorf("%s: unexpected node %T", c.sql, s.Where)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	s := MustParse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := s.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top should be OR, got %v", s.Where)
	}
	and, ok := or.Right.(*Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR should be AND, got %v", or.Right)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	s := MustParse("SELECT a + b * c FROM t")
	add, ok := s.Items[0].Expr.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("top should be +, got %v", s.Items[0].Expr)
	}
	mul, ok := add.Right.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("right of + should be *, got %v", add.Right)
	}
}

func TestParseNegativeNumbersFold(t *testing.T) {
	s := MustParse("SELECT * FROM t WHERE a > -5 AND b < -2.5")
	conjs := Conjuncts(s.Where)
	lit := conjs[0].(*Binary).Right.(*Literal)
	if lit.Value.Kind != table.KindInt || lit.Value.Int != -5 {
		t.Errorf("folded literal = %v", lit.Value)
	}
	flit := conjs[1].(*Binary).Right.(*Literal)
	if flit.Value.Kind != table.KindFloat || flit.Value.Float != -2.5 {
		t.Errorf("folded float literal = %v", flit.Value)
	}
}

func TestParseAggregates(t *testing.T) {
	s := MustParse("SELECT year, COUNT(*), SUM(gross), AVG(rating) FROM movies GROUP BY year HAVING COUNT(*) > 3 ORDER BY year DESC LIMIT 10")
	if !s.HasAggregates() {
		t.Fatal("should detect aggregates")
	}
	cnt, ok := s.Items[1].Expr.(*Call)
	if !ok || cnt.Name != "COUNT" || !cnt.Star {
		t.Errorf("COUNT(*) = %v", s.Items[1].Expr)
	}
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Errorf("groupby=%v having=%v", s.GroupBy, s.Having)
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Errorf("orderby = %v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := MustParse("SELECT * FROM t WHERE name = 'O''Brien'")
	lit := s.Where.(*Binary).Right.(*Literal)
	if lit.Value.Str != "O'Brien" {
		t.Errorf("escaped string = %q", lit.Value.Str)
	}
}

func TestParseBooleansAndNull(t *testing.T) {
	s := MustParse("SELECT TRUE, FALSE, NULL FROM t")
	if s.Items[0].Expr.(*Literal).Value.Bool != true {
		t.Error("TRUE literal")
	}
	if s.Items[1].Expr.(*Literal).Value.Bool != false {
		t.Error("FALSE literal")
	}
	if !s.Items[2].Expr.(*Literal).Value.IsNull() {
		t.Error("NULL literal")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT * FROM t;"); err != nil {
		t.Errorf("trailing semicolon should be allowed: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a >",
		"SELECT * FROM t WHERE a IN ()",
		"SELECT * FROM t WHERE a BETWEEN 1",
		"SELECT * FROM t WHERE name LIKE 5",
		"SELECT * FROM t LIMIT abc",
		"SELECT * FROM t extra garbage tokens (",
		"SELECT * FROM t WHERE name = 'unterminated",
		"SELECT * FROM t WHERE a ?? b",
		"SELECT COUNT(* FROM t",
		"SELECT * FROM t JOIN u",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT id, title FROM movies WHERE year > 2000",
		"SELECT DISTINCT m.title FROM movies AS m JOIN ratings AS r ON m.id = r.movie_id WHERE r.score >= 8 ORDER BY m.title LIMIT 5",
		"SELECT * FROM a, b WHERE a.x = b.y AND a.z IN (1, 2, 3)",
		"SELECT year, COUNT(*) AS n FROM movies GROUP BY year HAVING COUNT(*) > 2",
		"SELECT * FROM t WHERE a BETWEEN 1 AND 10 OR b LIKE 'x%'",
		"SELECT * FROM t WHERE NOT (a = 1) AND b IS NOT NULL",
		"SELECT a + b * c FROM t WHERE a - 1 >= 2",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		rendered := s1.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", rendered, q, err)
		}
		if s2.String() != rendered {
			t.Errorf("round trip not stable:\n  first:  %s\n  second: %s", rendered, s2.String())
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE a > 1 GROUP BY a HAVING COUNT(*) > 0 ORDER BY a")
	c := s.Clone()
	c.Where.(*Binary).Op = "<"
	if s.Where.(*Binary).Op != ">" {
		t.Error("clone shares Where expression")
	}
	if c.String() == s.String() {
		t.Error("mutated clone should render differently")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	s := MustParse("SELECT * FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	conjs := Conjuncts(s.Where)
	if len(conjs) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(conjs))
	}
	rejoined := AndAll(conjs)
	s2 := MustParse("SELECT * FROM t WHERE " + rejoined.String())
	if len(Conjuncts(s2.Where)) != 3 {
		t.Error("AndAll/Conjuncts round trip failed")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(empty) should be nil")
	}
}

func TestColumnsCollection(t *testing.T) {
	s := MustParse("SELECT m.title FROM movies m JOIN r ON m.id = r.mid WHERE r.score > 5 GROUP BY m.title ORDER BY m.title")
	cols := s.Columns()
	if len(cols) < 5 {
		t.Errorf("Columns found %d refs, want >= 5: %v", len(cols), cols)
	}
}

func TestWalkNilSafe(t *testing.T) {
	Walk(nil, func(Expr) { t.Error("fn should not be called for nil") })
}

func TestIsAggregateName(t *testing.T) {
	for _, name := range []string{"count", "SUM", "Avg", "MIN", "max"} {
		if !IsAggregateName(name) {
			t.Errorf("%q should be an aggregate", name)
		}
	}
	if IsAggregateName("median") {
		t.Error("median is not supported")
	}
}

// TestParseRandomIdentifiers exercises the lexer/parser with generated
// identifier-ish queries; every generated query must either parse or fail
// cleanly (no panic), and parsed ones must round-trip.
func TestParseRandomIdentifiers(t *testing.T) {
	f := func(col uint8, val int16) bool {
		name := "c" + string(rune('a'+col%26))
		sql := "SELECT " + name + " FROM t WHERE " + name + " > " + itoa(int(val))
		s, err := Parse(sql)
		if err != nil {
			return false
		}
		s2, err := Parse(s.String())
		return err == nil && s2.String() == s.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}
