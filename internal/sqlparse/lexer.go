// Package sqlparse implements a lexer, AST, and recursive-descent parser for
// the SQL subset used by the ASQP-RL reproduction: single SELECT statements
// with projections, FROM lists with aliases, explicit JOIN ... ON clauses,
// WHERE predicates (AND/OR/NOT, comparisons, BETWEEN, IN, LIKE, IS NULL,
// arithmetic), GROUP BY, HAVING, ORDER BY, and LIMIT. Aggregate functions
// COUNT/SUM/AVG/MIN/MAX (including COUNT(*)) are supported in projections and
// HAVING.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // operators and punctuation: = <> != < <= > >= + - * / % ( ) , .
	tokError
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords recognized by the lexer (upper-case canonical form).
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "NULL": true, "AS": true, "JOIN": true,
	"INNER": true, "ON": true, "GROUP": true, "BY": true, "HAVING": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"TRUE": true, "FALSE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. A token with kind tokError is appended on the first
// lexical error and scanning stops.
func lex(src string) []token {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber(start)
		case c == '\'':
			if !l.lexString(start) {
				return l.toks
			}
		default:
			if !l.lexOp(start) {
				return l.toks
			}
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c)
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.emit(tokKeyword, upper, start)
	} else {
		l.emit(tokIdent, text, start)
	}
}

func (l *lexer) lexNumber(start int) {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			// "1." followed by identifier is not a float continuation we
			// support; require digit after dot.
			if l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
				seenDot = true
				l.pos++
				continue
			}
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			if unicode.IsDigit(rune(next)) || ((next == '+' || next == '-') && l.pos+2 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+2]))) {
				l.pos += 2
				for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
					l.pos++
				}
				break
			}
		}
		break
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

// lexString scans a single-quoted SQL string with ” as the escaped quote.
// It reports whether scanning succeeded.
func (l *lexer) lexString(start int) bool {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, b.String(), start)
			return true
		}
		b.WriteByte(c)
		l.pos++
	}
	l.emit(tokError, fmt.Sprintf("unterminated string at offset %d", start), start)
	return false
}

// lexOp scans operators and punctuation. It reports whether scanning
// succeeded.
func (l *lexer) lexOp(start int) bool {
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		l.emit(tokOp, two, start)
		return true
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
		l.pos++
		l.emit(tokOp, string(c), start)
		return true
	}
	l.emit(tokError, fmt.Sprintf("unexpected character %q at offset %d", c, start), start)
	return false
}
