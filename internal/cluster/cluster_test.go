package cluster

import (
	"math/rand"
	"testing"
)

// threeBlobs generates three well-separated gaussian blobs in 2D.
func threeBlobs(rng *rand.Rand, perBlob int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var vecs [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < perBlob; i++ {
			vecs = append(vecs, []float64{
				c[0] + rng.NormFloat64()*0.5,
				c[1] + rng.NormFloat64()*0.5,
			})
			labels = append(labels, ci)
		}
	}
	return vecs, labels
}

func TestKMeansRecoverBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs, labels := threeBlobs(rng, 30)
	res := KMeans(vecs, 3, 50, rng)
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d, want 3", len(res.Centroids))
	}
	// All points with the same true label must share a cluster.
	for ci := 0; ci < 3; ci++ {
		seen := map[int]bool{}
		for i, l := range labels {
			if l == ci {
				seen[res.Assignments[i]] = true
			}
		}
		if len(seen) != 1 {
			t.Errorf("true blob %d split across clusters %v", ci, seen)
		}
	}
	// And different labels map to different clusters.
	clusterOf := map[int]int{}
	for i, l := range labels {
		clusterOf[l] = res.Assignments[i]
	}
	if clusterOf[0] == clusterOf[1] || clusterOf[1] == clusterOf[2] || clusterOf[0] == clusterOf[2] {
		t.Error("blobs merged into the same cluster")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if res := KMeans(nil, 3, 10, rng); res.Assignments != nil || res.Centroids != nil {
		t.Error("empty input should give empty result")
	}
	// k > n clamps.
	vecs := [][]float64{{1, 1}, {2, 2}}
	res := KMeans(vecs, 10, 10, rng)
	if len(res.Centroids) != 2 {
		t.Errorf("k should clamp to n, got %d centroids", len(res.Centroids))
	}
	// k < 1 clamps to 1.
	res = KMeans(vecs, 0, 10, rng)
	if len(res.Centroids) != 1 {
		t.Errorf("k=0 should clamp to 1, got %d", len(res.Centroids))
	}
	// Identical points.
	same := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	res = KMeans(same, 2, 10, rng)
	if len(res.Assignments) != 3 {
		t.Error("identical points should still be assigned")
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	vecs, _ := threeBlobs(rand.New(rand.NewSource(3)), 20)
	a := KMeans(vecs, 3, 25, rand.New(rand.NewSource(7)))
	b := KMeans(vecs, 3, 25, rand.New(rand.NewSource(7)))
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed should give same clustering")
		}
	}
}

func TestMedoidsAreInputPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vecs, _ := threeBlobs(rng, 15)
	meds := Medoids(vecs, 3, 25, rng)
	if len(meds) != 3 {
		t.Fatalf("medoids = %v, want 3 indices", meds)
	}
	seen := map[int]bool{}
	for _, m := range meds {
		if m < 0 || m >= len(vecs) {
			t.Errorf("medoid index %d out of range", m)
		}
		if seen[m] {
			t.Errorf("duplicate medoid %d", m)
		}
		seen[m] = true
	}
}

func TestMedoidsEmpty(t *testing.T) {
	if m := Medoids(nil, 3, 10, rand.New(rand.NewSource(1))); m != nil {
		t.Errorf("empty input should give nil medoids, got %v", m)
	}
}

func TestSilhouetteSeparatedVsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vecs, labels := threeBlobs(rng, 20)
	good := Silhouette(vecs, labels)
	if good < 0.7 {
		t.Errorf("silhouette of perfect clustering = %.3f, want high", good)
	}
	randomAssign := make([]int, len(vecs))
	for i := range randomAssign {
		randomAssign[i] = rng.Intn(3)
	}
	bad := Silhouette(vecs, randomAssign)
	if bad >= good {
		t.Errorf("random assignment silhouette %.3f should be below true %.3f", bad, good)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if s := Silhouette(nil, nil); s != 0 {
		t.Error("empty silhouette should be 0")
	}
	vecs := [][]float64{{1}, {2}, {3}}
	if s := Silhouette(vecs, []int{0, 0, 0}); s != 0 {
		t.Error("single-cluster silhouette should be 0")
	}
}
