// Package cluster implements k-means and k-medoids clustering over embedding
// vectors. ASQP-RL uses it to select query representatives from the embedded,
// relaxed workload (Section 4.2), to split workloads into interest clusters
// for the drift experiments (Section 6.2), and as the core of the QRD
// baseline (query result diversification via medoid selection).
package cluster

import (
	"math"
	"math/rand"
)

// Result holds a clustering: an assignment per input vector and the final
// centroids.
type Result struct {
	Assignments []int
	Centroids   [][]float64
}

// sqDist returns squared euclidean distance.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters vecs into k clusters using Lloyd's algorithm with k-means++
// seeding. It is deterministic given rng. k is clamped to [1, len(vecs)].
func KMeans(vecs [][]float64, k, iters int, rng *rand.Rand) Result {
	n := len(vecs)
	if n == 0 {
		return Result{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dim := len(vecs[0])

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), vecs[first]...))
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, v := range vecs {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; pick arbitrary.
			centroids = append(centroids, append([]float64(nil), vecs[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range dists {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), vecs[idx]...))
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				if d := sqDist(v, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for ci := range sums {
			sums[ci] = make([]float64, dim)
		}
		for i, v := range vecs {
			ci := assign[i]
			counts[ci]++
			for d := range v {
				sums[ci][d] += v[d]
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				// Re-seed empty cluster at the farthest point.
				far, farD := 0, -1.0
				for i, v := range vecs {
					if d := sqDist(v, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[ci], vecs[far])
				continue
			}
			for d := range centroids[ci] {
				centroids[ci][d] = sums[ci][d] / float64(counts[ci])
			}
		}
	}
	// Final assignment pass.
	for i, v := range vecs {
		best, bestD := 0, math.Inf(1)
		for ci, c := range centroids {
			if d := sqDist(v, c); d < bestD {
				best, bestD = ci, d
			}
		}
		assign[i] = best
	}
	return Result{Assignments: assign, Centroids: centroids}
}

// Medoids clusters vecs with KMeans and returns, for each cluster, the index
// of the input vector closest to its centroid. The returned indices are
// unique and sorted by cluster id; empty clusters are skipped, so fewer than
// k indices may be returned.
func Medoids(vecs [][]float64, k, iters int, rng *rand.Rand) []int {
	res := KMeans(vecs, k, iters, rng)
	if len(res.Centroids) == 0 {
		return nil
	}
	medoids := make([]int, 0, len(res.Centroids))
	for ci := range res.Centroids {
		best, bestD := -1, math.Inf(1)
		for i, v := range vecs {
			if res.Assignments[i] != ci {
				continue
			}
			if d := sqDist(v, res.Centroids[ci]); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			medoids = append(medoids, best)
		}
	}
	return medoids
}

// Silhouette returns the mean silhouette coefficient of a clustering, a
// quality measure in [-1, 1]; useful in tests and the drift-splitting
// heuristics. Returns 0 for degenerate inputs.
func Silhouette(vecs [][]float64, assign []int) float64 {
	n := len(vecs)
	if n < 2 {
		return 0
	}
	k := 0
	for _, a := range assign {
		if a+1 > k {
			k = a + 1
		}
	}
	if k < 2 {
		return 0
	}
	var total float64
	counted := 0
	for i := range vecs {
		sums := make([]float64, k)
		counts := make([]int, k)
		for j := range vecs {
			if i == j {
				continue
			}
			d := math.Sqrt(sqDist(vecs[i], vecs[j]))
			sums[assign[j]] += d
			counts[assign[j]]++
		}
		own := assign[i]
		if counts[own] == 0 {
			continue
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for ci := 0; ci < k; ci++ {
			if ci == own || counts[ci] == 0 {
				continue
			}
			if m := sums[ci] / float64(counts[ci]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
