package embed

import (
	"math"
	"testing"
	"testing/quick"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

func TestTokens(t *testing.T) {
	got := Tokens("SELECT m.title, COUNT(*) FROM movies_2020!")
	want := []string{"select", "m", "title", "count", "from", "movies_2020"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTextEmbedUnitNorm(t *testing.T) {
	e := Embedder{}
	v := e.Text("hello world foo bar")
	var n float64
	for _, x := range v {
		n += x * x
	}
	if math.Abs(n-1) > 1e-9 {
		t.Errorf("norm^2 = %v, want 1", n)
	}
	if len(v) != DefaultDim {
		t.Errorf("dim = %d, want %d", len(v), DefaultDim)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	e := Embedder{Dim: 32}
	f := func(s string) bool {
		a := e.Text(s)
		b := e.Text(s)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyTextIsZeroVector(t *testing.T) {
	e := Embedder{}
	v := e.Text("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text should embed to zero vector")
		}
	}
	if Cosine(v, v) != 0 {
		t.Error("cosine of zero vectors should be 0")
	}
}

func TestQuerySimilarityOrdering(t *testing.T) {
	e := Embedder{}
	base := e.QuerySQL("SELECT title FROM movies WHERE year > 2000 AND genre = 'drama'")
	similar := e.QuerySQL("SELECT title FROM movies WHERE year > 1995 AND genre = 'drama'")
	different := e.QuerySQL("SELECT person FROM credits WHERE role = 'director'")

	simClose := Cosine(base, similar)
	simFar := Cosine(base, different)
	if simClose <= simFar {
		t.Errorf("similar query (%.3f) should be closer than different query (%.3f)", simClose, simFar)
	}
	if simClose < 0.5 {
		t.Errorf("structurally similar queries should be close, got %.3f", simClose)
	}
}

func TestRelaxedQueryStaysClose(t *testing.T) {
	e := Embedder{}
	// Relaxation changes constants slightly; embeddings must stay close
	// because buckets are coarse.
	a := e.QuerySQL("SELECT * FROM flights WHERE dep_delay > 100")
	b := e.QuerySQL("SELECT * FROM flights WHERE dep_delay > 75")
	if Cosine(a, b) < 0.8 {
		t.Errorf("relaxed variant should stay close, got %.3f", Cosine(a, b))
	}
}

func TestQueryEmbedFallsBackToText(t *testing.T) {
	e := Embedder{}
	v := e.QuerySQL("THIS IS NOT ((( SQL")
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		t.Error("unparseable query should still embed via text fallback")
	}
}

func TestRowEmbedding(t *testing.T) {
	e := Embedder{}
	schema := table.Schema{
		{Name: "title", Kind: table.KindString},
		{Name: "year", Kind: table.KindInt},
		{Name: "rating", Kind: table.KindFloat},
	}
	r1 := table.Row{table.NewString("Alpha"), table.NewInt(1999), table.NewFloat(8.1)}
	r2 := table.Row{table.NewString("Alpha"), table.NewInt(1999), table.NewFloat(8.3)}
	r3 := table.Row{table.NewString("Zeta"), table.NewInt(1950), table.NewFloat(2.0)}

	v1 := e.Row("movies", schema, r1)
	v2 := e.Row("movies", schema, r2)
	v3 := e.Row("movies", schema, r3)
	if Cosine(v1, v2) <= Cosine(v1, v3) {
		t.Errorf("near-identical rows (%.3f) should be closer than different rows (%.3f)",
			Cosine(v1, v2), Cosine(v1, v3))
	}
}

func TestRowEmbeddingHandlesNullsAndShortRows(t *testing.T) {
	e := Embedder{}
	schema := table.Schema{
		{Name: "a", Kind: table.KindString},
		{Name: "b", Kind: table.KindInt},
	}
	vNull := e.Row("t", schema, table.Row{table.Null, table.Null})
	for _, x := range vNull {
		if math.IsNaN(x) {
			t.Error("null row should not produce NaN")
		}
	}
	// Short row (fewer values than schema) must not panic.
	_ = e.Row("t", schema, table.Row{table.NewString("x")})
}

func TestCosineProperties(t *testing.T) {
	e := Embedder{Dim: 16}
	a := e.Text("alpha beta gamma")
	if math.Abs(Cosine(a, a)-1) > 1e-9 {
		t.Errorf("self-cosine = %v, want 1", Cosine(a, a))
	}
	if Cosine(a, []float64{1, 2}) != 0 {
		t.Error("mismatched dims should give 0")
	}
	if Cosine(nil, nil) != 0 {
		t.Error("empty vectors should give 0")
	}
	b := e.Text("delta epsilon")
	if got := Distance(a, b); math.Abs(got-(1-Cosine(a, b))) > 1e-12 {
		t.Error("Distance should be 1 - Cosine")
	}
}

func TestNumericBucketCoarseness(t *testing.T) {
	// Values within the same half-decade share buckets.
	if numericBucket(100) != numericBucket(150) {
		t.Error("100 and 150 should share a bucket")
	}
	if numericBucket(100) == numericBucket(10000) {
		t.Error("100 and 10000 should not share a bucket")
	}
	if numericBucket(-5) == numericBucket(5) {
		t.Error("sign must distinguish buckets")
	}
	if numericBucket(0) != "num:0" {
		t.Error("zero bucket")
	}
}

func TestQueryEmbeddingSeparatesTables(t *testing.T) {
	e := Embedder{}
	q1 := e.Query(sqlparse.MustParse("SELECT * FROM movies"))
	q2 := e.Query(sqlparse.MustParse("SELECT * FROM flights"))
	if Cosine(q1, q2) > 0.9 {
		t.Errorf("queries over different tables too close: %.3f", Cosine(q1, q2))
	}
}
