// Package embed provides deterministic vector embeddings for SQL queries and
// database tuples. It substitutes for the modified sentence-BERT models the
// paper uses (Section 4.2): a feature-hashing bag-of-tokens embedder that
// preserves token-overlap similarity, which is the property ASQP-RL relies on
// for query-representative clustering and answerability estimation.
//
// Queries embed from their structural tokens (tables, columns, operators) and
// bucketized literals, so a relaxed query lands near its original. Tuples
// embed from "column=value" tokens, incorporating column names as tokens
// exactly as the paper's tabular sentence-BERT variant does.
package embed

import (
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// DefaultDim is the embedding dimensionality used across the system.
const DefaultDim = 64

// Embedder hashes weighted tokens into a fixed-dimension vector.
type Embedder struct {
	// Dim is the embedding dimensionality; zero means DefaultDim.
	Dim int
}

func (e Embedder) dim() int {
	if e.Dim <= 0 {
		return DefaultDim
	}
	return e.Dim
}

// hashToken maps a token to (index, sign) via two FNV hashes.
func hashToken(tok string, dim int) (int, float64) {
	h := fnv.New64a()
	h.Write([]byte(tok))
	sum := h.Sum64()
	idx := int(sum % uint64(dim))
	sign := 1.0
	if (sum>>32)&1 == 1 {
		sign = -1.0
	}
	return idx, sign
}

// addToken accumulates a weighted token into vec.
func addToken(vec []float64, tok string, weight float64) {
	idx, sign := hashToken(tok, len(vec))
	vec[idx] += sign * weight
}

// normalize scales vec to unit L2 norm in place (no-op for zero vectors).
func normalize(vec []float64) {
	var n float64
	for _, v := range vec {
		n += v * v
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range vec {
		vec[i] /= n
	}
}

// Tokens splits free text into lower-case alphanumeric tokens.
func Tokens(s string) []string {
	var out []string
	var cur strings.Builder
	for _, r := range strings.ToLower(s) {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			cur.WriteRune(r)
			continue
		}
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// Text embeds free text as a unit vector.
func (e Embedder) Text(s string) []float64 {
	vec := make([]float64, e.dim())
	for _, tok := range Tokens(s) {
		addToken(vec, tok, 1)
	}
	normalize(vec)
	return vec
}

// numericBucket maps a numeric value to a coarse log-scale bucket token so
// nearby literals (e.g. an original predicate constant and its relaxed
// variant) share tokens.
func numericBucket(v float64) string {
	if v == 0 {
		return "num:0"
	}
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	exp := int(math.Floor(math.Log10(v) * 2)) // half-decade buckets
	return "num:" + sign + strconv.Itoa(exp)
}

// Query embeds a parsed SQL statement. Structural tokens (tables, columns,
// operators) carry more weight than literal values, so queries with the same
// shape but different constants remain close.
func (e Embedder) Query(stmt *sqlparse.Select) []float64 {
	vec := make([]float64, e.dim())
	for _, f := range stmt.From {
		addToken(vec, "tbl:"+strings.ToLower(f.Table), 3)
	}
	for _, j := range stmt.Joins {
		addToken(vec, "tbl:"+strings.ToLower(j.Ref.Table), 3)
		addToken(vec, "join", 2)
	}
	for _, c := range stmt.Columns() {
		addToken(vec, "col:"+strings.ToLower(c.Column), 2)
	}
	addPredicateTokens(vec, stmt.Where)
	for _, j := range stmt.Joins {
		addPredicateTokens(vec, j.On)
	}
	if stmt.HasAggregates() {
		addToken(vec, "agg", 1)
	}
	for _, g := range stmt.GroupBy {
		if c, ok := g.(*sqlparse.ColumnRef); ok {
			addToken(vec, "grp:"+strings.ToLower(c.Column), 1)
		}
	}
	normalize(vec)
	return vec
}

// QuerySQL parses and embeds a SQL string; unparseable strings fall back to
// plain text embedding so the estimator degrades gracefully.
func (e Embedder) QuerySQL(sql string) []float64 {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return e.Text(sql)
	}
	return e.Query(stmt)
}

// addPredicateTokens walks a predicate tree adding tokens per node.
func addPredicateTokens(vec []float64, expr sqlparse.Expr) {
	sqlparse.Walk(expr, func(n sqlparse.Expr) {
		switch x := n.(type) {
		case *sqlparse.Binary:
			switch x.Op {
			case "AND", "OR":
				addToken(vec, "op:"+strings.ToLower(x.Op), 0.5)
			case "=", "<>", "<", "<=", ">", ">=":
				if c, ok := x.Left.(*sqlparse.ColumnRef); ok {
					addToken(vec, "pred:"+strings.ToLower(c.Column)+":"+x.Op, 2)
				}
			}
		case *sqlparse.In:
			if c, ok := x.X.(*sqlparse.ColumnRef); ok {
				addToken(vec, "pred:"+strings.ToLower(c.Column)+":in", 2)
			}
			for _, item := range x.List {
				if lit, ok := item.(*sqlparse.Literal); ok {
					addLiteralToken(vec, lit.Value, 1)
				}
			}
		case *sqlparse.Between:
			if c, ok := x.X.(*sqlparse.ColumnRef); ok {
				addToken(vec, "pred:"+strings.ToLower(c.Column)+":between", 2)
			}
		case *sqlparse.Like:
			if c, ok := x.X.(*sqlparse.ColumnRef); ok {
				addToken(vec, "pred:"+strings.ToLower(c.Column)+":like", 2)
			}
			for _, tok := range Tokens(x.Pattern) {
				addToken(vec, "lit:"+tok, 1)
			}
		case *sqlparse.IsNull:
			if c, ok := x.X.(*sqlparse.ColumnRef); ok {
				addToken(vec, "pred:"+strings.ToLower(c.Column)+":null", 1)
			}
		case *sqlparse.Literal:
			addLiteralToken(vec, x.Value, 1)
		}
	})
}

func addLiteralToken(vec []float64, v table.Value, weight float64) {
	switch v.Kind {
	case table.KindInt, table.KindFloat:
		addToken(vec, numericBucket(v.AsFloat()), weight)
	case table.KindString:
		for _, tok := range Tokens(v.Str) {
			addToken(vec, "lit:"+tok, weight)
		}
	case table.KindBool:
		addToken(vec, "lit:"+v.String(), weight)
	}
}

// Row embeds a tuple of the named table. Column names participate as tokens
// ("column=value" and bucketized numerics), mirroring the paper's tabular
// sentence-BERT modification.
func (e Embedder) Row(tableName string, schema table.Schema, row table.Row) []float64 {
	vec := make([]float64, e.dim())
	addToken(vec, "tbl:"+strings.ToLower(tableName), 2)
	for i, col := range schema {
		if i >= len(row) {
			break
		}
		v := row[i]
		if v.IsNull() {
			continue
		}
		name := strings.ToLower(col.Name)
		switch v.Kind {
		case table.KindInt, table.KindFloat:
			addToken(vec, name+"="+numericBucket(v.AsFloat()), 1)
		case table.KindString:
			for _, tok := range Tokens(v.Str) {
				addToken(vec, name+"="+tok, 1)
			}
		case table.KindBool:
			addToken(vec, name+"="+v.String(), 1)
		}
	}
	normalize(vec)
	return vec
}

// Cosine returns the cosine similarity of two vectors (0 for mismatched or
// zero-norm inputs). Inputs produced by this package are unit vectors, so
// this reduces to a dot product.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Distance returns 1 - Cosine(a, b), a dissimilarity in [0, 2].
func Distance(a, b []float64) float64 { return 1 - Cosine(a, b) }
