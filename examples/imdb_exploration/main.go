// IMDB exploration session: reproduces the paper's motivating scenario — an
// analyst iteratively explores a movie database with complex SPJ queries,
// comparing direct execution on the full database against the ASQP-RL
// approximation set, and comparing result quality against random sampling.
//
//	go run ./examples/imdb_exploration
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"asqprl/internal/baselines"
	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/engine"
	"asqprl/internal/metrics"
	"asqprl/internal/workload"
)

func main() {
	db := datagen.IMDB(0.25, 7)
	fmt.Printf("IMDB-shaped database: %d tuples\n", db.TotalRows())

	// A 30-query exploration history; 70% trains the system, 30% simulates
	// the analyst's future session.
	history := workload.IMDB(30, 11)
	rng := rand.New(rand.NewSource(3))
	train, future := history.Split(0.7, rng)

	cfg := core.DefaultConfig()
	cfg.K = 800
	cfg.Episodes = 48
	start := time.Now()
	sys, err := core.Train(db, train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline training: %s → %d-tuple approximation set\n",
		time.Since(start).Round(time.Millisecond), sys.Set().Size())

	// Random baseline of the same size for comparison.
	ranSub, err := (baselines.Random{}).Build(db, train, sys.Set().Size(), baselines.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	ranDB := ranSub.Materialize(db)

	fmt.Println("\nfuture exploration session (held-out queries):")
	fmt.Printf("%-74s %10s %10s %8s\n", "query", "full-time", "approx-t", "coverage")
	var asqpScores, ranScores []float64
	for _, q := range future {
		fullStart := time.Now()
		fullRes, err := engine.ExecuteWith(db, q.Stmt, engine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fullTime := time.Since(fullStart)

		apStart := time.Now()
		res, err := sys.QueryApprox(q.Stmt)
		if err != nil {
			log.Fatal(err)
		}
		apTime := time.Since(apStart)

		one := workload.Workload{q}
		one.Normalize()
		s, _ := metrics.PerQueryScores(db, sys.SetDB(), one, cfg.F)
		r, _ := metrics.PerQueryScores(db, ranDB, one, cfg.F)
		asqpScores = append(asqpScores, s[0])
		ranScores = append(ranScores, r[0])

		sql := q.SQL
		if len(sql) > 72 {
			sql = sql[:69] + "..."
		}
		fmt.Printf("%-74s %10s %10s %7.0f%%\n", sql,
			fullTime.Round(time.Microsecond), apTime.Round(time.Microsecond), s[0]*100)
		_ = fullRes
		_ = res
	}
	fmt.Printf("\nmean coverage of future queries: ASQP-RL %.1f%%, random sample %.1f%%\n",
		100*metrics.Mean(asqpScores), 100*metrics.Mean(ranScores))
}
