// Aggregate queries over the approximation set (Section 6.4): although
// ASQP-RL targets non-aggregate queries, aggregates computed over the set —
// with the standard COUNT/SUM sample scale-up — come surprisingly close to
// exact answers, competitive with dedicated AQP models (see the fig12
// experiment for the full comparison against the VAE and SPN substitutes).
//
//	go run ./examples/aggregates
package main

import (
	"fmt"
	"log"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/metrics"
	"asqprl/internal/sqlparse"
	"asqprl/internal/workload"
)

func main() {
	db := datagen.Flights(0.2, 4)
	flights := db.Table("flights").NumRows()

	// Train on aggregate queries — the pipeline rewrites them to SPJ form.
	train := workload.FlightsAggregates(20, 6)
	cfg := core.DefaultConfig()
	cfg.K = flights / 50 // 2% memory
	cfg.Episodes = 36
	sys, err := core.Train(db, train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ratio := float64(flights) / float64(sys.SetDB().Table("flights").NumRows())
	fmt.Printf("FLIGHTS: %d rows; approximation set keeps %d (scale-up factor %.1f)\n\n",
		flights, sys.SetDB().Table("flights").NumRows(), ratio)

	queries := []string{
		"SELECT COUNT(*) FROM flights WHERE dep_delay > 30",
		"SELECT AVG(dep_delay) FROM flights WHERE carrier = 'AA'",
		"SELECT SUM(distance) FROM flights WHERE month = 7",
		"SELECT carrier, COUNT(*) FROM flights WHERE dep_delay > 20 GROUP BY carrier",
	}
	for _, q := range queries {
		stmt := sqlparse.MustParse(q)
		// The public API: QueryAggregate routes via the estimator and
		// applies the COUNT/SUM sample scale-up automatically.
		approx, err := sys.QueryAggregate(q)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := sys.ExactAggregate(stmt)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("> %s\n", q)
		source := "approximation set"
		if !approx.FromApproximation {
			source = "full database (estimator fallback; exact)"
		}
		if len(stmt.GroupBy) == 0 {
			fmt.Printf("  exact %.1f, approximate %.1f (relative error %.3f, scale x%.1f, %s)\n\n",
				truth[""], approx.Values[""],
				metrics.RelativeError(approx.Values[""], truth[""]),
				approx.ScaleFactor, source)
			continue
		}
		fmt.Printf("  %d exact groups, %d approximated; group relative error %.3f (%s)\n\n",
			len(truth), len(approx.Values),
			metrics.GroupRelativeError(approx.Values, truth), source)
	}
}
