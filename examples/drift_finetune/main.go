// Interest drift (Section 4.4): the analyst's focus moves from movies to the
// people behind them. The answerability estimator flags the new queries as
// out-of-distribution; after enough deviating queries the drift detector
// triggers, and fine-tuning re-aligns the approximation set.
//
//	go run ./examples/drift_finetune
package main

import (
	"fmt"
	"log"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/workload"
)

func main() {
	db := datagen.IMDB(0.1, 5)

	// Phase 1 interest: movies by genre/year/rating.
	movieQueries := workload.MustNew(
		"SELECT * FROM title WHERE genre = 'drama' AND production_year > 1990",
		"SELECT * FROM title WHERE genre = 'comedy' AND rating > 6",
		"SELECT title, rating FROM title WHERE votes > 500 AND rating > 7",
		"SELECT * FROM title WHERE genre = 'action' AND production_year BETWEEN 1990 AND 2010",
		"SELECT * FROM title WHERE kind = 'movie' AND rating >= 8",
	)

	cfg := core.DefaultConfig()
	cfg.K = 400
	cfg.Episodes = 32
	sys, err := core.Train(db, movieQueries, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d movie queries; set size %d\n", len(movieQueries), sys.Set().Size())

	// Phase 2 interest: people. Completely different table.
	peopleQueries := []string{
		"SELECT * FROM name WHERE gender = 'f' AND birth_year > 1980",
		"SELECT name FROM name WHERE birth_year < 1945",
		"SELECT * FROM name WHERE gender = 'm' AND birth_year BETWEEN 1950 AND 1970",
		"SELECT name, birth_year FROM name WHERE birth_year = 1968",
	}

	fmt.Println("\nanalyst drifts to people queries:")
	for _, q := range peopleQueries {
		res, err := sys.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		source := "approximation set"
		if !res.FromApproximation {
			source = "FULL DATABASE (estimator fallback)"
		}
		fmt.Printf("  %-72s conf %.2f → %s\n", q, res.Confidence, source)
		if res.DriftTriggered {
			fmt.Println("  >>> drift detector fired: fine-tuning on the deviating queries")
			peopleW := workload.MustNew(peopleQueries...)
			before, _ := sys.ScoreOn(peopleW)
			ok, err := sys.FineTuneFromDrift(16)
			if err != nil {
				log.Fatal(err)
			}
			after, _ := sys.ScoreOn(peopleW)
			fmt.Printf("  >>> fine-tuned=%v: people-query score %.3f → %.3f\n", ok, before, after)
			break
		}
	}

	// After fine-tuning, people queries are recognized (high confidence);
	// whether they are served from the set depends on how well the rebuilt
	// set actually covers them — the estimator is honest about that.
	res, err := sys.Query("SELECT * FROM name WHERE gender = 'f' AND birth_year > 1975")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npost-fine-tune people query: %d rows, confidence %.2f, served from set = %v\n",
		res.Table.NumRows(), res.Confidence, res.FromApproximation)
}
