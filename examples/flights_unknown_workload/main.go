// Unknown-workload mode (Section 4.5): no query history exists, so the
// system bootstraps from a statistics-generated workload, then refines the
// approximation set as the user's real queries arrive, fine-tuning the RL
// model each round.
//
//	go run ./examples/flights_unknown_workload
package main

import (
	"fmt"
	"log"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/workload"
)

func main() {
	db := datagen.Flights(0.2, 9)
	fmt.Printf("FLIGHTS database: %d tuples, no workload available\n", db.TotalRows())

	// The user's hidden interest: delayed long-haul flights. The system
	// never sees this list — only the queries the user issues, in batches.
	interest := workload.MustNew(
		"SELECT * FROM flights WHERE dep_delay > 60 AND distance > 1500",
		"SELECT carrier, origin, dep_delay FROM flights WHERE dep_delay > 90",
		"SELECT * FROM flights WHERE arr_delay > 45 AND distance > 2000",
		"SELECT * FROM flights WHERE dep_delay BETWEEN 60 AND 180 AND month = 7",
		"SELECT carrier, dep_delay FROM flights WHERE dep_delay > 120",
		"SELECT * FROM flights WHERE origin = 'ORD' AND dep_delay > 45",
		"SELECT * FROM flights WHERE dest = 'SFO' AND arr_delay > 60",
		"SELECT * FROM flights WHERE distance > 2500 AND dep_delay > 30",
	)

	// Bootstrap: generate a workload from table statistics alone.
	gen, err := core.GenerateWorkload(db, core.GenOptions{N: 24, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d bootstrap queries from table statistics, e.g.:\n  %s\n",
		len(gen), gen[0].SQL)

	cfg := core.DefaultConfig()
	cfg.K = 500
	cfg.Episodes = 36
	sys, err := core.Train(db, gen, cfg)
	if err != nil {
		log.Fatal(err)
	}

	score, _ := sys.ScoreOn(interest)
	fmt.Printf("\niteration 0 (statistics only): score on user interest = %.3f\n", score)

	// The user issues queries in batches of four; each batch fine-tunes the
	// model together with freshly generated aligned queries.
	for round := 0; round*4 < len(interest); round++ {
		batch := interest[round*4 : min(round*4+4, len(interest))]
		aligned, err := core.GenerateWorkload(db, core.GenOptions{N: 4, Seed: int64(round + 10)})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.FineTune(workload.Merge(workload.Workload(batch), aligned), 16); err != nil {
			log.Fatal(err)
		}
		score, _ = sys.ScoreOn(interest)
		fmt.Printf("iteration %d (%d user queries seen): score on user interest = %.3f\n",
			round+1, min((round+1)*4, len(interest)), score)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
