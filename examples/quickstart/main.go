// Quickstart: train an approximation set on a synthetic movie database and
// answer exploratory queries against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/workload"
)

func main() {
	// 1. A database: four IMDB-shaped tables, ~10k tuples at this scale.
	db := datagen.IMDB(0.1, 1)
	fmt.Printf("database: %d tuples across %v\n", db.TotalRows(), db.TableNames())

	// 2. A query workload: what the analyst has been asking so far.
	w := workload.MustNew(
		"SELECT * FROM title WHERE genre = 'drama' AND production_year > 1990",
		"SELECT title, rating FROM title WHERE rating >= 7.5 AND genre = 'drama'",
		"SELECT t.title, c.role FROM title t JOIN cast_info c ON t.id = c.title_id WHERE c.role = 'director'",
		"SELECT n.name, t.title FROM title t JOIN cast_info c ON t.id = c.title_id JOIN name n ON c.name_id = n.id WHERE t.genre = 'drama'",
		"SELECT * FROM title WHERE votes > 1000 AND rating > 6",
		"SELECT t.title, m.value FROM title t JOIN movie_info m ON t.id = m.title_id WHERE m.info_type = 'budget' AND m.value > 1000000",
	)

	// 3. Train: preprocessing + PPO actor-critic RL selects k tuples that
	//    cover the workload's results (Equation 1 of the paper).
	cfg := core.DefaultConfig()
	cfg.K = 600 // memory budget: at most 600 tuples kept
	cfg.F = 50  // frame size: how many rows a person reads
	cfg.Episodes = 48
	start := time.Now()
	sys, err := core.Train(db, w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %s; approximation set has %d tuples (%.1f%% of the data)\n",
		time.Since(start).Round(time.Millisecond), sys.Set().Size(),
		100*float64(sys.Set().Size())/float64(db.TotalRows()))

	// 4. Quality: Equation-1 score of the set against the workload.
	score, err := sys.ScoreOn(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload score: %.3f (1.0 = every query fully covered up to F rows)\n", score)

	// 5. Query: similar queries are answered from the set in microseconds;
	//    out-of-distribution queries fall back to the full database.
	for _, q := range []string{
		"SELECT title FROM title WHERE genre = 'drama' AND production_year > 1995",
		"SELECT * FROM name WHERE gender = 'f' AND birth_year < 1950",
	} {
		res, err := sys.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		source := "approximation set"
		if !res.FromApproximation {
			source = "full database"
		}
		fmt.Printf("\n> %s\n  %d rows from %s (predicted score %.2f)\n",
			q, res.Table.NumRows(), source, res.PredictedScore)
	}
}
