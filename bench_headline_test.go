package asqprl

import (
	"testing"

	"asqprl/internal/experiments"
)

func TestParseHeadlineCell(t *testing.T) {
	cases := []struct {
		cell string
		want float64
		ok   bool
	}{
		{"0.850", 0.850, true},
		{"0.850±0.021", 0.850, true},
		{"12.3ms", 12.3, true},
		{"12.3±0.4ms", 12.3, true}, // uncertainty before the unit
		{"12.3ms±0.4", 12.3, true}, // unit before the uncertainty
		{"2.5s", 2.5, true},        // plain seconds
		{"2.5±0.1s", 2.5, true},    // seconds with uncertainty
		{"85%", 85, true},
		{"85±3%", 85, true},
		{"IMDB", 0, false},
		{"ASQP-RL", 0, false},
		{"", 0, false},
		{"±", 0, false},
		{"ms", 0, false},
	}
	for _, c := range cases {
		got, ok := parseHeadlineCell(c.cell)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseHeadlineCell(%q) = %v, %v; want %v, %v", c.cell, got, ok, c.want, c.ok)
		}
	}
}

func TestHeadlinePicksFirstNumericCell(t *testing.T) {
	tbl := &experiments.Table{
		Title:  "t",
		Header: []string{"Dataset", "Method", "Score", "Setup"},
		Rows:   [][]string{{"IMDB", "ASQP-RL", "0.912±0.010", "123.4±5.6ms"}},
	}
	v, ok := headline([]*experiments.Table{tbl})
	if !ok || v != 0.912 {
		t.Fatalf("headline = %v, %v; want 0.912, true", v, ok)
	}
	if _, ok := headline(nil); ok {
		t.Fatal("headline(nil) should not parse")
	}
}
