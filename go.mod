module asqprl

go 1.22
